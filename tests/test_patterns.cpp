/// Tests for the selection patterns S1-S4 (Sec. II-B): index sets, block
/// counts, reduction factors, and the SelectedInversion container.

#include <gtest/gtest.h>

#include "fsi/pcyclic/patterns.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::pcyclic;
using dense::index_t;
using dense::Matrix;

TEST(Selection, IndicesMatchPaperFormula) {
  // Paper (1-based): I = {c-q, 2c-q, ..., bc-q}.  L=12, c=4, q=1 gives
  // {3, 7, 11} 1-based = {2, 6, 10} 0-based.
  Selection sel(12, 4, 1);
  EXPECT_EQ(sel.b(), 3);
  const auto idx = sel.indices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 2);
  EXPECT_EQ(idx[1], 6);
  EXPECT_EQ(idx[2], 10);
  EXPECT_TRUE(sel.contains(6));
  EXPECT_FALSE(sel.contains(5));
  EXPECT_FALSE(sel.contains(12));
}

TEST(Selection, QZeroSelectsLastIndex) {
  Selection sel(10, 5, 0);
  const auto idx = sel.indices();
  EXPECT_EQ(idx.back(), 9);  // 1-based L = bc - q with q=0
  EXPECT_TRUE(sel.contains(9));
}

TEST(Selection, InvalidParametersThrow) {
  EXPECT_THROW(Selection(10, 3, 0), util::CheckError);   // c does not divide L
  EXPECT_THROW(Selection(10, 5, 5), util::CheckError);   // q out of range
  EXPECT_THROW(Selection(10, 5, -1), util::CheckError);  // q negative
}

TEST(Selection, BlockCountsMatchPaperTable) {
  // Paper Sec. II-B table: S1 -> b, S2 -> b or b-1, S3/S4 -> bL.
  Selection q0(100, 10, 0);
  Selection q3(100, 10, 3);
  EXPECT_EQ(q0.block_count(Pattern::Diagonal), 10);
  EXPECT_EQ(q0.block_count(Pattern::SubDiagonal), 9);   // q = 0: b - 1
  EXPECT_EQ(q3.block_count(Pattern::SubDiagonal), 10);  // q != 0: b
  EXPECT_EQ(q0.block_count(Pattern::Columns), 1000);
  EXPECT_EQ(q0.block_count(Pattern::Rows), 1000);
}

TEST(Selection, ReductionFactorsMatchPaperTable) {
  // Full inverse has L^2 blocks; reductions are cL, cL, c, c.
  Selection sel(100, 10, 3);
  EXPECT_DOUBLE_EQ(sel.reduction_factor(Pattern::Diagonal), 1000.0);   // cL
  EXPECT_DOUBLE_EQ(sel.reduction_factor(Pattern::SubDiagonal), 1000.0);
  EXPECT_DOUBLE_EQ(sel.reduction_factor(Pattern::Columns), 10.0);      // c
  EXPECT_DOUBLE_EQ(sel.reduction_factor(Pattern::Rows), 10.0);
}

TEST(Selection, MemorySavingExampleFromPaper) {
  // "Typically for (N, L) = (1000, 100) we choose c = sqrt(L) = 10.
  //  Thus we save the memory usage by 90%."
  Selection sel(100, 10, 4);
  EXPECT_DOUBLE_EQ(1.0 / sel.reduction_factor(Pattern::Columns), 0.10);
}

TEST(SelectedInversion, ColumnsPatternSlots) {
  Selection sel(8, 4, 1);  // selected 0-based columns: {2, 6}
  SelectedInversion s(Pattern::Columns, 3, sel);
  EXPECT_EQ(s.size(), 16);
  EXPECT_TRUE(s.contains(0, 2));
  EXPECT_TRUE(s.contains(7, 6));
  EXPECT_FALSE(s.contains(0, 3));

  s.slot(5, 2) = Matrix::identity(3);
  EXPECT_EQ(s.at(5, 2)(0, 0), 1.0);
  EXPECT_THROW(s.slot(5, 3), util::CheckError);
  EXPECT_THROW(s.at(4, 2), util::CheckError);  // in pattern but never filled
}

TEST(SelectedInversion, RowsPatternSlots) {
  Selection sel(6, 3, 0);  // selected rows: {2, 5}
  SelectedInversion s(Pattern::Rows, 2, sel);
  EXPECT_EQ(s.size(), 12);
  EXPECT_TRUE(s.contains(2, 0));
  EXPECT_TRUE(s.contains(5, 5));
  EXPECT_FALSE(s.contains(1, 0));
}

TEST(SelectedInversion, DiagonalAndSubDiagonalSlots) {
  Selection sel(6, 3, 0);  // selected: {2, 5}
  SelectedInversion diag(Pattern::Diagonal, 2, sel);
  EXPECT_EQ(diag.size(), 2);
  EXPECT_TRUE(diag.contains(2, 2));
  EXPECT_FALSE(diag.contains(2, 3));

  SelectedInversion sub(Pattern::SubDiagonal, 2, sel);
  EXPECT_EQ(sub.size(), 1);  // k = 5 = L-1 excluded
  EXPECT_TRUE(sub.contains(2, 3));
  EXPECT_FALSE(sub.contains(5, 0));
}

TEST(SelectedInversion, KeysEnumerateThePattern) {
  Selection sel(4, 2, 1);  // selected: {0, 2}
  SelectedInversion s(Pattern::Columns, 1, sel);
  const auto& keys = s.keys();
  ASSERT_EQ(keys.size(), 8u);
  EXPECT_EQ(keys[0], std::make_pair(index_t{0}, index_t{0}));
  EXPECT_EQ(keys[4], std::make_pair(index_t{0}, index_t{2}));
}

TEST(SelectedInversion, BytesTracksStoredBlocks) {
  Selection sel(4, 2, 0);
  SelectedInversion s(Pattern::Diagonal, 10, sel);
  EXPECT_EQ(s.bytes(), 0u);
  s.slot(1, 1) = Matrix(10, 10);
  EXPECT_EQ(s.bytes(), 100 * sizeof(double));
}

TEST(Selection, PatternNamesAreStable) {
  EXPECT_STREQ(pattern_name(Pattern::Diagonal), "diagonal");
  EXPECT_STREQ(pattern_name(Pattern::Columns), "columns");
}

}  // namespace
