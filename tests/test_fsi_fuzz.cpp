/// Randomised configuration fuzzing for the full FSI pipeline: many random
/// (N, L, c, q, pattern, matrix) combinations, every selected block checked
/// against a dense inverse.  A broad safety net behind the targeted tests —
/// deterministic seeds keep failures reproducible.

#include <gtest/gtest.h>

#include "fsi/dense/norms.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"
#include "fsi/qmc/hubbard.hpp"
#include "fsi/selinv/fsi.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using dense::index_t;
using dense::Matrix;
using fsi::testing::expect_close;

/// Divisors of l, excluding 1 and l (interesting cluster sizes).
std::vector<index_t> proper_divisors(index_t l) {
  std::vector<index_t> out;
  for (index_t c = 2; c < l; ++c)
    if (l % c == 0) out.push_back(c);
  if (out.empty()) out.push_back(l);  // prime L: fall back to c = L
  return out;
}

TEST(FsiFuzz, RandomConfigurationsAllMatchDenseInverses) {
  util::Rng config_rng(0xF52);
  const pcyclic::Pattern patterns[] = {
      pcyclic::Pattern::Diagonal, pcyclic::Pattern::SubDiagonal,
      pcyclic::Pattern::Columns, pcyclic::Pattern::Rows,
      pcyclic::Pattern::AllDiagonals};

  for (int trial = 0; trial < 30; ++trial) {
    const index_t n = 2 + static_cast<index_t>(config_rng.below(9));    // 2..10
    const index_t l = 4 + static_cast<index_t>(config_rng.below(13));   // 4..16
    const auto divisors = proper_divisors(l);
    const index_t c =
        divisors[static_cast<std::size_t>(config_rng.below(divisors.size()))];
    const index_t q = static_cast<index_t>(config_rng.below(
        static_cast<std::uint64_t>(c)));
    const auto pattern = patterns[config_rng.below(5)];

    // Alternate random p-cyclic matrices and physical Hubbard matrices.
    pcyclic::PCyclicMatrix m = [&] {
      if (trial % 2 == 0) {
        util::Rng mat_rng(1000 + trial);
        return pcyclic::PCyclicMatrix::random(n, l, mat_rng);
      }
      qmc::HubbardParams p;
      p.u = config_rng.uniform(0.5, 5.0);
      p.beta = config_rng.uniform(0.5, 3.0);
      p.l = l;
      qmc::HubbardModel model(qmc::Lattice::chain(n), p);
      util::Rng field_rng(2000 + trial);
      qmc::HsField field(l, n, field_rng);
      return model.build_m(field, qmc::Spin::Down);
    }();

    Matrix g = pcyclic::full_inverse_dense(m);
    selinv::FsiOptions opts;
    opts.c = c;
    opts.q = q;
    opts.pattern = pattern;
    util::Rng rng(3000 + trial);
    auto s = selinv::fsi(m, opts, rng);

    SCOPED_TRACE("trial " + std::to_string(trial) + ": N=" + std::to_string(n) +
                 " L=" + std::to_string(l) + " c=" + std::to_string(c) + " q=" +
                 std::to_string(q) + " pattern=" + pcyclic::pattern_name(pattern));
    ASSERT_EQ(s.size(),
              pcyclic::Selection(l, c, q).block_count(pattern));
    for (const auto& [k, col] : s.keys())
      expect_close(s.at(k, col), pcyclic::dense_block(g, n, k, col), 5e-8,
                   "fuzzed block");
  }
}

TEST(FsiFuzz, MixedConfigurationsStayWithinGateTolerance) {
  // The same sweep at Precision::Mixed.  The health gate licenses every
  // returned result — an accepted fp32 run sits within the gate's error
  // budget, a tripped gate returns the fp64 recompute — so every selected
  // block must match the dense inverse at the corresponding tolerance.
  util::Rng config_rng(0xF53);
  const pcyclic::Pattern patterns[] = {
      pcyclic::Pattern::Diagonal, pcyclic::Pattern::SubDiagonal,
      pcyclic::Pattern::Columns, pcyclic::Pattern::Rows,
      pcyclic::Pattern::AllDiagonals};

  int accepted = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const index_t n = 2 + static_cast<index_t>(config_rng.below(7));
    const index_t l = 4 + static_cast<index_t>(config_rng.below(11));
    const auto divisors = proper_divisors(l);
    const index_t c =
        divisors[static_cast<std::size_t>(config_rng.below(divisors.size()))];
    const index_t q = static_cast<index_t>(
        config_rng.below(static_cast<std::uint64_t>(c)));
    const auto pattern = patterns[config_rng.below(5)];

    pcyclic::PCyclicMatrix m = [&] {
      if (trial % 2 == 0) {
        util::Rng mat_rng(5000 + trial);
        return pcyclic::PCyclicMatrix::random(n, l, mat_rng);
      }
      qmc::HubbardParams p;
      p.u = config_rng.uniform(0.5, 5.0);
      p.beta = config_rng.uniform(0.5, 3.0);
      p.l = l;
      qmc::HubbardModel model(qmc::Lattice::chain(n), p);
      util::Rng field_rng(6000 + trial);
      qmc::HsField field(l, n, field_rng);
      return model.build_m(field, qmc::Spin::Up);
    }();

    Matrix g = pcyclic::full_inverse_dense(m);
    selinv::FsiOptions opts;
    opts.c = c;
    opts.q = q;
    opts.pattern = pattern;
    opts.precision = fsi::Precision::Mixed;
    util::Rng rng(7000 + trial);
    selinv::FsiStats stats;
    auto s = selinv::fsi(m, opts, rng, &stats);

    SCOPED_TRACE("mixed trial " + std::to_string(trial) + ": N=" +
                 std::to_string(n) + " L=" + std::to_string(l) + " c=" +
                 std::to_string(c) + " q=" + std::to_string(q) + " pattern=" +
                 pcyclic::pattern_name(pattern) +
                 (stats.mixed_fallback ? " (fp64 fallback)" : " (fp32 kept)"));
    const bool kept_fp32 = stats.precision_used == fsi::Precision::Mixed;
    if (kept_fp32) ++accepted;
    const double tol = kept_fp32 ? 5e-3 : 5e-8;
    for (const auto& [k, col] : s.keys())
      expect_close(s.at(k, col), pcyclic::dense_block(g, n, k, col), tol,
                   "mixed fuzzed block");
  }
  // These are small well-conditioned configurations: if the gate rejected
  // every single run, mixed mode is broken (or the gate unusably tight).
  EXPECT_GT(accepted, 0);
}

}  // namespace
