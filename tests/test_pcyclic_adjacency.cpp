/// Exhaustive tests of the adjacency relations (Eqs. 4-7): every move from
/// every (k, l) position — generic, diagonal, sub-diagonal, first/last
/// row/column and the four corners — is checked against a dense inverse.

#include <gtest/gtest.h>

#include "fsi/dense/norms.hpp"
#include "fsi/pcyclic/adjacency.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::pcyclic;
using fsi::testing::expect_close;

struct AdjacencyFixtureData {
  PCyclicMatrix m;
  Matrix gdense;
  BlockOps ops;

  AdjacencyFixtureData(index_t n, index_t l, std::uint64_t seed)
      : m(make(n, l, seed)), gdense(full_inverse_dense(m)), ops(m) {}

  static PCyclicMatrix make(index_t n, index_t l, std::uint64_t seed) {
    util::Rng rng(seed);
    return PCyclicMatrix::random(n, l, rng);
  }

  Matrix g(index_t k, index_t l) const {
    return dense_block(gdense, m.block_size(), k, l);
  }
};

class AdjacencyAllMoves
    : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(AdjacencyAllMoves, UpMatchesDenseInverseFromEveryPosition) {
  const auto [n, l] = GetParam();
  AdjacencyFixtureData f(n, l, 201);
  for (index_t k = 0; k < l; ++k)
    for (index_t col = 0; col < l; ++col) {
      Matrix moved = f.ops.up(k, col, f.g(k, col));
      expect_close(moved, f.g(f.m.wrap(k - 1), col), 1e-9,
                   ("up from (" + std::to_string(k) + "," +
                    std::to_string(col) + ")").c_str());
    }
}

TEST_P(AdjacencyAllMoves, DownMatchesDenseInverseFromEveryPosition) {
  const auto [n, l] = GetParam();
  AdjacencyFixtureData f(n, l, 202);
  for (index_t k = 0; k < l; ++k)
    for (index_t col = 0; col < l; ++col) {
      Matrix moved = f.ops.down(k, col, f.g(k, col));
      expect_close(moved, f.g(f.m.wrap(k + 1), col), 1e-9,
                   ("down from (" + std::to_string(k) + "," +
                    std::to_string(col) + ")").c_str());
    }
}

TEST_P(AdjacencyAllMoves, LeftMatchesDenseInverseFromEveryPosition) {
  const auto [n, l] = GetParam();
  AdjacencyFixtureData f(n, l, 203);
  for (index_t k = 0; k < l; ++k)
    for (index_t col = 0; col < l; ++col) {
      Matrix moved = f.ops.left(k, col, f.g(k, col));
      expect_close(moved, f.g(k, f.m.wrap(col - 1)), 1e-9,
                   ("left from (" + std::to_string(k) + "," +
                    std::to_string(col) + ")").c_str());
    }
}

TEST_P(AdjacencyAllMoves, RightMatchesDenseInverseFromEveryPosition) {
  const auto [n, l] = GetParam();
  AdjacencyFixtureData f(n, l, 204);
  for (index_t k = 0; k < l; ++k)
    for (index_t col = 0; col < l; ++col) {
      Matrix moved = f.ops.right(k, col, f.g(k, col));
      expect_close(moved, f.g(k, f.m.wrap(col + 1)), 1e-9,
                   ("right from (" + std::to_string(k) + "," +
                    std::to_string(col) + ")").c_str());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AdjacencyAllMoves,
    ::testing::Values(std::make_pair(index_t{3}, index_t{2}),
                      std::make_pair(index_t{4}, index_t{3}),
                      std::make_pair(index_t{3}, index_t{8}),
                      std::make_pair(index_t{7}, index_t{5})),
    [](const auto& info) {
      return "N" + std::to_string(info.param.first) + "L" +
             std::to_string(info.param.second);
    });

TEST(Adjacency, RoundTripsAreConsistent) {
  // up then down (and left then right) must return the original block.
  AdjacencyFixtureData f(4, 6, 205);
  for (index_t k : {index_t{0}, index_t{2}, index_t{5}}) {
    for (index_t col : {index_t{0}, index_t{3}, index_t{5}}) {
      Matrix g0 = f.g(k, col);
      Matrix up = f.ops.up(k, col, g0);
      Matrix back = f.ops.down(f.m.wrap(k - 1), col, up);
      expect_close(back, g0, 1e-8, "up/down round trip");

      Matrix left = f.ops.left(k, col, g0);
      Matrix back2 = f.ops.right(k, f.m.wrap(col - 1), left);
      expect_close(back2, g0, 1e-8, "left/right round trip");
    }
  }
}

TEST(Adjacency, WholeColumnFromSingleSeed) {
  // Walking up L-1 times from one seed must reconstruct the whole column —
  // the essence of the paper's Alg. 2.
  AdjacencyFixtureData f(5, 7, 206);
  const index_t col = 4, seed_row = 2;
  Matrix cur = f.g(seed_row, col);
  index_t k = seed_row;
  for (index_t step = 0; step < f.m.num_blocks() - 1; ++step) {
    cur = f.ops.up(k, col, cur);
    k = f.m.wrap(k - 1);
    expect_close(cur, f.g(k, col), 1e-8, "column walk");
  }
}

TEST(Adjacency, WholeRowFromSingleSeed) {
  AdjacencyFixtureData f(5, 7, 207);
  const index_t row = 6, seed_col = 0;
  Matrix cur = f.g(row, seed_col);
  index_t col = seed_col;
  for (index_t step = 0; step < f.m.num_blocks() - 1; ++step) {
    cur = f.ops.right(row, col, cur);
    col = f.m.wrap(col + 1);
    expect_close(cur, f.g(row, col), 1e-8, "row walk");
  }
}

TEST(Adjacency, LuAccessorMatchesBlocks) {
  AdjacencyFixtureData f(4, 3, 208);
  for (index_t i = 0; i < 3; ++i) {
    Matrix x = Matrix::identity(4);
    f.ops.lu(i).solve(x);  // x = B_i^-1
    Matrix prod = dense::matmul(Matrix::copy_of(f.m.b(i)), x);
    expect_close(prod, Matrix::identity(4), 1e-10, "B B^-1 = I");
  }
  EXPECT_THROW(f.ops.lu(3), util::CheckError);
}

}  // namespace
