/// Tests for the equal-time Green's function engine — the DQMC sweep's
/// mathematical heart.  Every identity (ratio formula, rank-1 update, wrap,
/// stabilised recompute) is validated against dense linear algebra.

#include <gtest/gtest.h>

#include <cmath>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/expm.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"
#include "fsi/qmc/greens.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::qmc;
using fsi::testing::expect_close;

HubbardModel make_model(index_t nx, index_t l, double u = 2.0,
                        double beta = 2.0) {
  HubbardParams p;
  p.t = 1.0;
  p.u = u;
  p.beta = beta;
  p.l = l;
  return HubbardModel(Lattice::chain(nx), p);
}

TEST(EqualTimeGreensFn, MatchesPCyclicDiagonalBlocks) {
  // G(k, k) of the dense p-cyclic inverse == equal_time_greens for every k.
  HubbardModel model = make_model(4, 6);
  util::Rng rng(601);
  HsField h(6, 4, rng);
  for (Spin spin : {Spin::Up, Spin::Down}) {
    pcyclic::PCyclicMatrix m = model.build_m(h, spin);
    Matrix g_full = pcyclic::full_inverse_dense(m);
    for (index_t k = 0; k < 6; ++k) {
      Matrix g = equal_time_greens(model, h, spin, k, /*cluster=*/2);
      expect_close(g, pcyclic::dense_block(g_full, 4, k, k), 1e-10,
                   "equal-time G(k,k)");
    }
  }
}

TEST(EqualTimeGreensFn, ClusterSizeDoesNotChangeTheAnswer) {
  HubbardModel model = make_model(3, 8);
  util::Rng rng(602);
  HsField h(8, 3, rng);
  Matrix ref = equal_time_greens(model, h, Spin::Up, 3, 1);
  for (index_t c : {2, 4, 8}) {
    Matrix g = equal_time_greens(model, h, Spin::Up, 3, c);
    expect_close(g, ref, 1e-11, "cluster-size independence");
  }
}

TEST(EqualTimeGreensFn, UZeroFreeFermionLimit) {
  // At U = 0 all B_l = e^{t dtau K}, so A = e^{beta t K} exactly and
  // G = (I + e^{beta t K})^-1 independent of the HS field.
  HubbardModel model = make_model(5, 8, /*u=*/0.0, /*beta=*/1.5);
  util::Rng rng(603);
  HsField h(8, 5, rng);

  Matrix kb(5, 5);
  dense::copy(model.lattice().adjacency(), kb);
  dense::scal(1.0 * 1.5, kb);  // t * beta
  Matrix a = dense::expm(kb);
  for (index_t d = 0; d < 5; ++d) a(d, d) += 1.0;
  Matrix g_exact = dense::inverse(a);

  for (index_t k : {index_t{0}, index_t{5}}) {
    Matrix g = equal_time_greens(model, h, Spin::Down, k, 4);
    expect_close(g, g_exact, 1e-11, "U=0 free fermions");
  }
}

TEST(EqualTimeGreensFn, StableAtLowTemperature) {
  // beta = 8, L = 64: the raw chain product has a huge dynamic range; the
  // clustered QR accumulation must still deliver G with G + small residual.
  HubbardModel model = make_model(4, 64, /*u=*/4.0, /*beta=*/8.0);
  util::Rng rng(604);
  HsField h(64, 4, rng);
  Matrix g = equal_time_greens(model, h, Spin::Up, 0, 8);
  // Identity: G (I + A) = I, with A from the (stable) reduced chain.
  // Cheap sanity: all entries finite and bounded by O(1); G diag in [0. 1.?]
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(std::isfinite(g(i, j)));
      EXPECT_LT(std::fabs(g(i, j)), 10.0);
    }
}

TEST(EqualTimeGreensEngine, RecomputeMatchesFreeFunction) {
  HubbardModel model = make_model(4, 6);
  util::Rng rng(605);
  HsField h(6, 4, rng);
  EqualTimeGreens eng(model, h, Spin::Up, 2);
  // Engine starts at slice 0: G = (I + A(L-1))^-1 = G(L-1, L-1).
  Matrix expected = equal_time_greens(model, h, Spin::Up, 5, 2);
  expect_close(eng.g(), expected, 1e-12, "initial recompute");
}

TEST(EqualTimeGreensEngine, FlipRatioMatchesBruteForceDeterminants) {
  // The Metropolis ratio r_sigma = 1 + alpha (1 - G(i,i)) must equal
  // det M(h') / det M(h) computed by dense LU — this pins down every sign
  // convention in the sweep.
  HubbardModel model = make_model(3, 5, /*u=*/3.0, /*beta=*/1.0);
  util::Rng rng(606);
  HsField h(5, 3, rng);

  for (Spin spin : {Spin::Up, Spin::Down}) {
    for (index_t site : {index_t{0}, index_t{2}}) {
      EqualTimeGreens eng(model, h, spin, 5);
      ASSERT_EQ(eng.slice(), 0);
      const double alpha = eng.flip_alpha(site);
      const double r = eng.flip_ratio(site, alpha);

      dense::LuFactorization lu_before(model.build_m(h, spin).to_dense());
      HsField h2 = h;
      h2.flip(0, site);
      dense::LuFactorization lu_after(model.build_m(h2, spin).to_dense());
      const double brute =
          lu_after.sign_det() * lu_before.sign_det() *
          std::exp(lu_after.log_abs_det() - lu_before.log_abs_det());
      EXPECT_NEAR(r, brute, 1e-8 * std::fabs(brute))
          << "spin " << sign_of(spin) << " site " << site;
    }
  }
}

TEST(EqualTimeGreensEngine, ApplyFlipMatchesRecompute) {
  HubbardModel model = make_model(4, 4, /*u=*/2.5);
  util::Rng rng(607);
  HsField h(4, 4, rng);
  EqualTimeGreens eng(model, h, Spin::Down, 4);

  const index_t site = 1;
  const double alpha = eng.flip_alpha(site);
  const double r = eng.flip_ratio(site, alpha);
  eng.apply_flip(site, alpha, r);
  h.flip(eng.slice(), site);

  EqualTimeGreens fresh(model, h, Spin::Down, 4);
  expect_close(eng.g(), fresh.g(), 1e-10, "Sherman-Morrison update");
}

TEST(EqualTimeGreensEngine, AdvanceMatchesRecomputeAtEverySlice) {
  HubbardModel model = make_model(3, 6);
  util::Rng rng(608);
  HsField h(6, 3, rng);
  EqualTimeGreens eng(model, h, Spin::Up, 3, /*wrap_interval=*/100);
  for (index_t step = 0; step < 6; ++step) {
    eng.advance();
    const index_t prev = (eng.slice() - 1 + 6) % 6;
    Matrix expected = equal_time_greens(model, h, Spin::Up, prev, 3);
    expect_close(eng.g(), expected, 1e-9, "wrap identity");
  }
  EXPECT_EQ(eng.slice(), 0);  // full circle
}

TEST(EqualTimeGreensEngine, PeriodicRecomputeKeepsDriftSmall) {
  HubbardModel model = make_model(4, 16, /*u=*/4.0, /*beta=*/4.0);
  util::Rng rng(609);
  HsField h(16, 4, rng);
  EqualTimeGreens eng(model, h, Spin::Up, 4, /*wrap_interval=*/4);
  for (int step = 0; step < 32; ++step) eng.advance();
  EXPECT_LT(eng.last_drift(), 1e-8);
}

TEST(EqualTimeGreensEngine, MixedSweepConsistency) {
  // Interleave flips and wraps, then compare against a fresh engine — the
  // integration test of the whole sweep kernel.
  HubbardModel model = make_model(4, 5, /*u=*/2.0);
  util::Rng rng(610);
  HsField h(5, 4, rng);
  EqualTimeGreens eng(model, h, Spin::Up, 5);

  for (index_t s = 0; s < 3; ++s) {
    for (index_t i = 0; i < 4; ++i) {
      const double alpha = eng.flip_alpha(i);
      const double r = eng.flip_ratio(i, alpha);
      if (r > 0.5) {  // deterministic pseudo-acceptance
        eng.apply_flip(i, alpha, r);
        h.flip(eng.slice(), i);
      }
    }
    eng.advance();
  }
  EqualTimeGreens fresh(model, h, Spin::Up, 5);
  // fresh starts at slice 0 but eng is at slice 3; recompute comparison:
  Matrix expected = equal_time_greens(model, h, Spin::Up, 2, 5);
  expect_close(eng.g(), expected, 1e-9, "mixed sweep");
}

TEST(EqualTimeGreensEngine, InvalidArgumentsThrow) {
  HubbardModel model = make_model(3, 4);
  util::Rng rng(611);
  HsField h(4, 3, rng);
  EXPECT_THROW(EqualTimeGreens(model, h, Spin::Up, 2, 0), util::CheckError);
  HsField wrong(5, 3, rng);
  EXPECT_THROW(EqualTimeGreens(model, wrong, Spin::Up, 2), util::CheckError);
  EXPECT_THROW(equal_time_greens(model, h, Spin::Up, 9, 2), util::CheckError);
}

}  // namespace
