// Protocol, admission-queue and server-robustness tests of fsi::serve.
//
// Everything here is deliberately OpenMP-free: models are tiny (every gemm
// stays under kParallelFlopThreshold, i.e. serial) and the server tests
// substitute a stub Engine, so this binary can run under the ThreadSanitizer
// CI job alongside the scheduler/executor suites (suite names carry the
// Serve prefix the TSan ctest regex selects).  The end-to-end numerical
// tests — real engine, OpenMP inside — live in test_serve.cpp.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "fsi/io/wire.hpp"
#include "fsi/obs/build.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/serve/client.hpp"
#include "fsi/serve/metrics_http.hpp"
#include "fsi/serve/protocol.hpp"
#include "fsi/serve/queue.hpp"
#include "fsi/serve/server.hpp"
#include "fsi/serve/socket.hpp"
#include "fsi/util/check.hpp"
#include "openmetrics_checker.hpp"

namespace {

using namespace fsi;
using namespace fsi::serve;

InvertRequest tiny_request(std::uint64_t id = 1) {
  InvertRequest r;
  r.id = id;
  r.lx = 2;
  r.ly = 1;
  r.l = 2;
  r.c = 1;
  r.q = 0;
  r.seed = 3;
  r.field = random_field(r.lx, r.ly, r.l, r.seed);
  return r;
}

std::string test_socket_path(const char* tag) {
  return "unix:/tmp/fsi_serve_test_" + std::to_string(::getpid()) + "_" +
         tag + ".sock";
}

// ---------------------------------------------------------------------------
// Wire protocol

TEST(ServeProtocol, RequestRoundTrip) {
  InvertRequest r = tiny_request(42);
  r.deadline_us = 12345;
  r.time_dependent = false;
  const auto payload = encode_request(r);
  const Decoded d = decode_payload(payload.data(), payload.size());
  ASSERT_EQ(d.type, MsgType::InvertRequest);
  EXPECT_EQ(d.request.id, 42u);
  EXPECT_EQ(d.request.lx, r.lx);
  EXPECT_EQ(d.request.ly, r.ly);
  EXPECT_EQ(d.request.l, r.l);
  EXPECT_EQ(d.request.c, r.c);
  EXPECT_EQ(d.request.q, r.q);
  EXPECT_EQ(d.request.seed, r.seed);
  EXPECT_EQ(d.request.t, r.t);
  EXPECT_EQ(d.request.u, r.u);
  EXPECT_EQ(d.request.beta, r.beta);
  EXPECT_EQ(d.request.deadline_us, r.deadline_us);
  EXPECT_EQ(d.request.time_dependent, r.time_dependent);
  EXPECT_EQ(d.request.field, r.field);
}

TEST(ServeProtocol, ResponseRoundTrip) {
  InvertResponse r;
  r.id = 7;
  r.status = Status::Ok;
  r.q_used = 3;
  r.deadline_exceeded = true;
  r.queue_wait_us = 100;
  r.execute_us = 200;
  r.batch_size = 4;
  r.l = 8;
  r.dmax = 2;
  r.measurements = {1.0, -2.5, 3.25};
  r.message = "all good";
  const auto payload = encode_response(r);
  const Decoded d = decode_payload(payload.data(), payload.size());
  ASSERT_EQ(d.type, MsgType::InvertResponse);
  EXPECT_EQ(d.response.id, 7u);
  EXPECT_EQ(d.response.status, Status::Ok);
  EXPECT_EQ(d.response.q_used, 3);
  EXPECT_TRUE(d.response.deadline_exceeded);
  EXPECT_EQ(d.response.queue_wait_us, 100u);
  EXPECT_EQ(d.response.execute_us, 200u);
  EXPECT_EQ(d.response.batch_size, 4u);
  EXPECT_EQ(d.response.l, 8u);
  EXPECT_EQ(d.response.dmax, 2u);
  EXPECT_EQ(d.response.measurements, r.measurements);
  EXPECT_EQ(d.response.message, "all good");
}

TEST(ServeProtocol, V2RequestRoundTripCarriesTraceContext) {
  InvertRequest r = tiny_request(42);
  r.trace_id = 0xDEADBEEFCAFEULL;
  r.client_send_ns = 1234567890123;
  const auto payload = encode_request(r);  // defaults to kSchemaVersion
  const Decoded d = decode_payload(payload.data(), payload.size());
  ASSERT_EQ(d.type, MsgType::InvertRequest);
  EXPECT_EQ(d.schema, kSchemaVersion);
  EXPECT_EQ(d.request.trace_id, r.trace_id);
  EXPECT_EQ(d.request.client_send_ns, r.client_send_ns);
}

TEST(ServeProtocol, V2ResponseRoundTripCarriesBreakdown) {
  InvertResponse r;
  r.id = 9;
  r.status = Status::Ok;
  r.trace_id = 0x1234;
  r.queue_wait_ns = 1111;
  r.batch_wait_ns = 2222;
  r.exec_ns = 3333;
  r.batch_occupancy = 0.625;
  const auto payload = encode_response(r);
  const Decoded d = decode_payload(payload.data(), payload.size());
  ASSERT_EQ(d.type, MsgType::InvertResponse);
  EXPECT_EQ(d.schema, kSchemaVersion);
  EXPECT_EQ(d.response.trace_id, 0x1234u);
  EXPECT_EQ(d.response.queue_wait_ns, 1111u);
  EXPECT_EQ(d.response.batch_wait_ns, 2222u);
  EXPECT_EQ(d.response.exec_ns, 3333u);
  EXPECT_DOUBLE_EQ(d.response.batch_occupancy, 0.625);
}

TEST(ServeProtocol, V1EncodingDecodesWithDefaultExtensions) {
  // A v1 frame is a strict prefix of the v2 body: decoding it must succeed
  // and leave every extension field at its default.
  InvertRequest req = tiny_request(5);
  req.trace_id = 777;          // set but not encodable in v1
  req.client_send_ns = 12345;
  const auto req_payload = encode_request(req, /*version=*/1);
  const Decoded dr = decode_payload(req_payload.data(), req_payload.size());
  EXPECT_EQ(dr.schema, 1u);
  EXPECT_EQ(dr.request.id, 5u);
  EXPECT_EQ(dr.request.trace_id, 0u);
  EXPECT_EQ(dr.request.client_send_ns, 0);

  InvertResponse resp;
  resp.id = 6;
  resp.status = Status::Ok;
  resp.trace_id = 777;
  resp.queue_wait_ns = 999;
  resp.batch_occupancy = 1.0;
  const auto resp_payload = encode_response(resp, /*version=*/1);
  const Decoded dp = decode_payload(resp_payload.data(), resp_payload.size());
  EXPECT_EQ(dp.schema, 1u);
  EXPECT_EQ(dp.response.id, 6u);
  EXPECT_EQ(dp.response.trace_id, 0u);
  EXPECT_EQ(dp.response.queue_wait_ns, 0u);
  EXPECT_EQ(dp.response.batch_occupancy, 0.0);
}

TEST(ServeProtocol, V3RoundTripCarriesPrecision) {
  InvertRequest r = tiny_request(11);
  r.precision = 1;  // mixed
  const auto payload = encode_request(r);  // defaults to kSchemaVersion (3)
  const Decoded d = decode_payload(payload.data(), payload.size());
  EXPECT_EQ(d.schema, kSchemaVersion);
  EXPECT_EQ(d.request.precision, 1u);

  InvertResponse resp;
  resp.id = 12;
  resp.status = Status::Ok;
  resp.precision_used = 1;
  resp.mixed_fallback = true;
  const auto resp_payload = encode_response(resp);
  const Decoded dp = decode_payload(resp_payload.data(), resp_payload.size());
  EXPECT_EQ(dp.schema, kSchemaVersion);
  EXPECT_EQ(dp.response.precision_used, 1u);
  EXPECT_TRUE(dp.response.mixed_fallback);
}

TEST(ServeProtocol, V2EncodingDropsPrecisionFields) {
  // A v2 frame is a strict prefix of the v3 body: precision never travels
  // and decodes to the fp64 default, so a v2 client sees today's protocol.
  InvertRequest req = tiny_request(13);
  req.precision = 1;
  const auto req_payload = encode_request(req, /*version=*/2);
  const Decoded dr = decode_payload(req_payload.data(), req_payload.size());
  EXPECT_EQ(dr.schema, 2u);
  EXPECT_EQ(dr.request.precision, 0u);

  InvertResponse resp;
  resp.id = 14;
  resp.status = Status::Ok;
  resp.precision_used = 1;
  resp.mixed_fallback = true;
  const auto resp_payload = encode_response(resp, /*version=*/2);
  const Decoded dp = decode_payload(resp_payload.data(), resp_payload.size());
  EXPECT_EQ(dp.schema, 2u);
  EXPECT_EQ(dp.response.precision_used, 0u);
  EXPECT_FALSE(dp.response.mixed_fallback);
}

TEST(ServeProtocol, ValidateRejectsUnknownPrecision) {
  InvertRequest r = tiny_request(15);
  r.precision = 2;  // only 0 (fp64) and 1 (mixed) are defined
  const std::string why = validate_request(r);
  EXPECT_NE(why.find("precision"), std::string::npos) << why;
  r.precision = 1;
  EXPECT_EQ(validate_request(r), "");
}

TEST(ServeQueue, BatchKeySeparatesPrecisions) {
  // A mixed and an fp64 request must never coalesce into one engine run:
  // precision is part of the BatchKey and of its stable hash.
  PendingRequest a;
  a.request = tiny_request(1);
  PendingRequest b;
  b.request = tiny_request(2);
  b.request.precision = 1;
  EXPECT_FALSE(a.key() == b.key());
  EXPECT_NE(hash(a.key()), hash(b.key()));

  PendingRequest c;
  c.request = tiny_request(3);
  EXPECT_TRUE(a.key() == c.key());
  EXPECT_EQ(hash(a.key()), hash(c.key()));
}

TEST(ServeProtocol, StatsRoundTrip) {
  StatsResponse s;
  s.id = 31;
  s.uptime_ns = 123456789;
  s.connections = 1;
  s.admitted = 2;
  s.served_ok = 3;
  s.rejected_full = 4;
  s.deadline_miss = 5;
  s.cancelled = 6;
  s.malformed = 7;
  s.errors = 8;
  s.shed_shutdown = 9;
  s.batches = 10;
  s.batched_requests = 11;
  s.models_built = 3;
  s.model_cache_hits = 9;
  s.model_cache_size = 2;
  s.queue_depth = 12;
  s.queue_high_water = 13;
  s.queue_capacity = 64;
  s.latency_s = WindowStat{100, 0.5, 0.4, 0.9, 0.99};
  s.queue_wait_s = WindowStat{100, 0.1, 0.05, 0.2, 0.3};
  s.occupancy = WindowStat{10, 0.75, 0.8, 1.0, 1.0};
  s.build_version = "1.2.3";
  s.build_git_sha = "abc1234+dirty";
  s.build_compiler = "testcc 0.0";
  s.build_type = "Release";

  const auto payload = encode_stats_response(s);
  const Decoded d = decode_payload(payload.data(), payload.size());
  ASSERT_EQ(d.type, MsgType::StatsResponse);
  EXPECT_EQ(d.stats.id, 31u);
  EXPECT_EQ(d.stats.stats_version, kStatsVersion);
  EXPECT_EQ(d.stats.uptime_ns, 123456789u);
  EXPECT_EQ(d.stats.connections, 1u);
  EXPECT_EQ(d.stats.admitted, 2u);
  EXPECT_EQ(d.stats.served_ok, 3u);
  EXPECT_EQ(d.stats.rejected_full, 4u);
  EXPECT_EQ(d.stats.deadline_miss, 5u);
  EXPECT_EQ(d.stats.cancelled, 6u);
  EXPECT_EQ(d.stats.malformed, 7u);
  EXPECT_EQ(d.stats.errors, 8u);
  EXPECT_EQ(d.stats.shed_shutdown, 9u);
  EXPECT_EQ(d.stats.batches, 10u);
  EXPECT_EQ(d.stats.batched_requests, 11u);
  EXPECT_EQ(d.stats.models_built, 3u);
  EXPECT_EQ(d.stats.model_cache_hits, 9u);
  EXPECT_EQ(d.stats.model_cache_size, 2u);
  EXPECT_EQ(d.stats.queue_depth, 12u);
  EXPECT_EQ(d.stats.queue_high_water, 13u);
  EXPECT_EQ(d.stats.queue_capacity, 64u);
  EXPECT_DOUBLE_EQ(d.stats.model_cache_hit_rate(), 0.75);
  EXPECT_EQ(d.stats.latency_s.count, 100u);
  EXPECT_DOUBLE_EQ(d.stats.latency_s.p95, 0.9);
  EXPECT_DOUBLE_EQ(d.stats.queue_wait_s.mean, 0.1);
  EXPECT_DOUBLE_EQ(d.stats.occupancy.p99, 1.0);
  EXPECT_EQ(d.stats.build_version, "1.2.3");
  EXPECT_EQ(d.stats.build_git_sha, "abc1234+dirty");
  EXPECT_EQ(d.stats.build_compiler, "testcc 0.0");
  EXPECT_EQ(d.stats.build_type, "Release");

  const auto req_payload = encode_stats_request(17);
  const Decoded dq = decode_payload(req_payload.data(), req_payload.size());
  ASSERT_EQ(dq.type, MsgType::StatsRequest);
  EXPECT_EQ(dq.stats.id, 17u);
}

TEST(ServeProtocol, StatsV1SnapshotRoundTripsWithoutBuildStrings) {
  // A v1-tagged snapshot (old daemon) carries no build provenance on the
  // wire.  Both encode and decode gate on the snapshot's own version, so a
  // decoded v1 snapshot re-encodes byte-identically and its build strings
  // stay empty instead of desynchronising the reader.
  StatsResponse s;
  s.id = 5;
  s.stats_version = 1;
  s.served_ok = 42;
  s.build_version = "should-not-travel";
  s.build_git_sha = "deadbee";

  const auto payload = encode_stats_response(s);
  const Decoded d = decode_payload(payload.data(), payload.size());
  ASSERT_EQ(d.type, MsgType::StatsResponse);
  EXPECT_EQ(d.stats.stats_version, 1u);
  EXPECT_EQ(d.stats.served_ok, 42u);
  EXPECT_TRUE(d.stats.build_version.empty());
  EXPECT_TRUE(d.stats.build_git_sha.empty());
  EXPECT_TRUE(d.stats.build_compiler.empty());
  EXPECT_TRUE(d.stats.build_type.empty());

  const auto again = encode_stats_response(d.stats);
  EXPECT_EQ(again, payload);
}

TEST(ServeProtocol, StatsV4RoundTripCarriesMixedTotalsAndPolicyRows) {
  StatsResponse s;
  s.id = 51;
  s.served_ok = 7;
  s.mixed_runs = 40;
  s.mixed_fallbacks = 3;
  s.policy_rows.push_back(PolicyKeyRow{0xDEADBEEFCAFEF00Dull, 1500, 8,
                                       /*bypass=*/false, 2.25});
  s.policy_rows.push_back(PolicyKeyRow{42, 0, 1, /*bypass=*/true, 0.97});

  const auto payload = encode_stats_response(s);
  const Decoded d = decode_payload(payload.data(), payload.size());
  ASSERT_EQ(d.type, MsgType::StatsResponse);
  EXPECT_EQ(d.stats.stats_version, kStatsVersion);
  EXPECT_EQ(d.stats.mixed_runs, 40u);
  EXPECT_EQ(d.stats.mixed_fallbacks, 3u);
  ASSERT_EQ(d.stats.policy_rows.size(), 2u);
  EXPECT_EQ(d.stats.policy_rows[0].key_hash, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(d.stats.policy_rows[0].window_us, 1500);
  EXPECT_EQ(d.stats.policy_rows[0].max_batch, 8u);
  EXPECT_FALSE(d.stats.policy_rows[0].bypass);
  EXPECT_DOUBLE_EQ(d.stats.policy_rows[0].speedup, 2.25);
  EXPECT_EQ(d.stats.policy_rows[1].key_hash, 42u);
  EXPECT_TRUE(d.stats.policy_rows[1].bypass);
  EXPECT_DOUBLE_EQ(d.stats.policy_rows[1].speedup, 0.97);
}

TEST(ServeProtocol, StatsV3SnapshotRoundTripsWithoutMixedFields) {
  // A v3-tagged snapshot (pre-mixed daemon) carries no mixed totals and no
  // policy table on the wire: the fields decode to their zero defaults and
  // the snapshot re-encodes byte-identically, mirroring the v1 guarantee.
  StatsResponse s;
  s.id = 52;
  s.stats_version = 3;
  s.served_ok = 19;
  s.adaptive_enabled = true;
  s.policy_keys = 2;
  s.mixed_runs = 99;  // must not travel in a v3 body
  s.policy_rows.push_back(PolicyKeyRow{1, 2, 3, false, 4.0});

  const auto payload = encode_stats_response(s);
  const Decoded d = decode_payload(payload.data(), payload.size());
  ASSERT_EQ(d.type, MsgType::StatsResponse);
  EXPECT_EQ(d.stats.stats_version, 3u);
  EXPECT_EQ(d.stats.served_ok, 19u);
  EXPECT_TRUE(d.stats.adaptive_enabled);
  EXPECT_EQ(d.stats.policy_keys, 2u);
  EXPECT_EQ(d.stats.mixed_runs, 0u);
  EXPECT_EQ(d.stats.mixed_fallbacks, 0u);
  EXPECT_TRUE(d.stats.policy_rows.empty());

  const auto again = encode_stats_response(d.stats);
  EXPECT_EQ(again, payload);
}

TEST(ServeProtocol, StatsMessagesUnknownUnderSchemaV1) {
  // v1 never had the Stats pair: a v1-stamped StatsRequest must be rejected
  // as an unknown message type, not silently half-decoded.
  auto payload = encode_stats_request(3);
  const std::uint32_t v1 = 1;
  std::memcpy(payload.data(), &v1, sizeof v1);
  EXPECT_THROW(decode_payload(payload.data(), payload.size()),
               util::CheckError);
}

TEST(ServeProtocol, TruncatedPayloadThrows) {
  const auto payload = encode_request(tiny_request());
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                 std::size_t{17}, payload.size() - 1}) {
    EXPECT_THROW(decode_payload(payload.data(), keep), util::CheckError)
        << "kept " << keep << " bytes";
  }
}

TEST(ServeProtocol, SchemaMismatchThrowsDistinctType) {
  auto payload = encode_request(tiny_request());
  const std::uint32_t bad_version = kSchemaVersion + 7;
  std::memcpy(payload.data(), &bad_version, sizeof bad_version);
  EXPECT_THROW(decode_payload(payload.data(), payload.size()), SchemaMismatch);
  try {
    decode_payload(payload.data(), payload.size());
    FAIL() << "expected SchemaMismatch";
  } catch (const SchemaMismatch& e) {
    EXPECT_EQ(e.got_version, bad_version);
  }
}

TEST(ServeProtocol, TrailingBytesThrow) {
  auto payload = encode_request(tiny_request());
  payload.push_back(0xAB);
  EXPECT_THROW(decode_payload(payload.data(), payload.size()),
               util::CheckError);
}

TEST(ServeWire, HostileVectorCountRejectedWithoutAllocation) {
  // A count near 2^64 chosen so that `count * sizeof(double)` wraps to a
  // small value: the length check must not be fooled into attempting a
  // multi-exabyte vector allocation (std::length_error / bad_alloc).
  io::WireWriter w;
  w.put_u64(0x2000000000000001ULL);
  w.put_f64(0.0);  // 8 bytes remaining — equals the wrapped product
  const auto bytes = w.take();
  io::WireReader r(bytes.data(), bytes.size());
  EXPECT_THROW(r.get_f64_vector(), util::CheckError);
}

TEST(ServeProtocol, UnknownMessageTypeThrows) {
  auto payload = encode_request(tiny_request());
  const std::uint32_t bad_type = 99;
  std::memcpy(payload.data() + sizeof(std::uint32_t), &bad_type,
              sizeof bad_type);
  EXPECT_THROW(decode_payload(payload.data(), payload.size()),
               util::CheckError);
}

// ---------------------------------------------------------------------------
// Framing

TEST(ServeFrameParser, ByteByByteDelivery) {
  const auto p1 = encode_request(tiny_request(1));
  const auto p2 = encode_response(InvertResponse{});
  std::vector<std::uint8_t> stream;
  append_frame(stream, p1);
  append_frame(stream, p2);

  FrameParser parser;
  std::vector<std::vector<std::uint8_t>> got;
  std::vector<std::uint8_t> payload;
  for (const std::uint8_t byte : stream) {
    parser.feed(&byte, 1);
    while (parser.next(payload)) got.push_back(payload);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], p1);
  EXPECT_EQ(got[1], p2);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(ServeFrameParser, BadMagicThrows) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, encode_request(tiny_request()));
  stream[0] ^= 0xFF;
  FrameParser parser;
  parser.feed(stream.data(), stream.size());
  std::vector<std::uint8_t> payload;
  EXPECT_THROW(parser.next(payload), util::CheckError);
}

TEST(ServeFrameParser, OversizedFrameThrows) {
  // Declared length above the parser's bound: rejected from the header
  // alone, before any allocation of the declared size.
  std::vector<std::uint8_t> header;
  const std::uint32_t magic = kFrameMagic;
  const std::uint32_t huge = 1u << 20;
  header.resize(8);
  std::memcpy(header.data(), &magic, 4);
  std::memcpy(header.data() + 4, &huge, 4);
  FrameParser parser(/*max_frame_bytes=*/1u << 16);
  parser.feed(header.data(), header.size());
  std::vector<std::uint8_t> payload;
  EXPECT_THROW(parser.next(payload), util::CheckError);
}

TEST(ServeFrameParser, TruncatedFrameStaysPending) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, encode_request(tiny_request()));
  FrameParser parser;
  parser.feed(stream.data(), stream.size() - 5);
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(parser.next(payload));  // incomplete: no frame, no throw
  parser.feed(stream.data() + stream.size() - 5, 5);
  EXPECT_TRUE(parser.next(payload));
}

// ---------------------------------------------------------------------------
// Validation and derived quantities

TEST(ServeProtocol, ValidateRequestCatchesBadInputs) {
  EXPECT_EQ(validate_request(tiny_request()), "");

  InvertRequest r = tiny_request();
  r.lx = 0;
  EXPECT_NE(validate_request(r), "");

  r = tiny_request();
  r.c = 3;  // does not divide L = 2
  EXPECT_NE(validate_request(r), "");

  r = tiny_request();
  r.q = 5;  // c = 1, so q must be 0
  EXPECT_NE(validate_request(r), "");

  r = tiny_request();
  r.field.pop_back();
  EXPECT_NE(validate_request(r), "");

  r = tiny_request();
  r.field[0] = 0.5;  // not an Ising value
  EXPECT_NE(validate_request(r), "");

  r = tiny_request();
  r.beta = -1.0;
  EXPECT_NE(validate_request(r), "");

  // Non-finite physics parameters: NaN is caught by self-comparison tricks,
  // but +-infinity must be rejected too — an inf model would poison the
  // server's model cache under that key.
  const double inf = std::numeric_limits<double>::infinity();
  r = tiny_request();
  r.t = inf;
  EXPECT_NE(validate_request(r), "");

  r = tiny_request();
  r.u = -inf;
  EXPECT_NE(validate_request(r), "");

  r = tiny_request();
  r.beta = inf;
  EXPECT_NE(validate_request(r), "");

  r = tiny_request();
  r.beta = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(validate_request(r), "");
}

TEST(ServeProtocol, ResolveQDeterministicAndInRange) {
  InvertRequest r = tiny_request();
  r.l = 8;
  r.c = 4;
  r.q = -1;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    r.seed = seed;
    const index_t q1 = resolve_q(r, 4);
    const index_t q2 = resolve_q(r, 4);
    EXPECT_EQ(q1, q2);
    EXPECT_GE(q1, 0);
    EXPECT_LT(q1, 4);
  }
  r.q = 2;
  EXPECT_EQ(resolve_q(r, 4), 2);
}

TEST(ServeEndpoint, ParseSpecs) {
  const Endpoint u = Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_TRUE(u.is_unix);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  EXPECT_EQ(u.describe(), "unix:/tmp/x.sock");

  const Endpoint t = Endpoint::parse("tcp:127.0.0.1:7070");
  EXPECT_FALSE(t.is_unix);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 7070);

  EXPECT_THROW(Endpoint::parse("http://x"), util::CheckError);
  EXPECT_THROW(Endpoint::parse("unix:"), util::CheckError);
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1:notaport"), util::CheckError);
}

// ---------------------------------------------------------------------------
// Admission queue

PendingRequest pending(std::uint64_t id, std::uint32_t l = 2) {
  PendingRequest p;
  p.request = tiny_request(id);
  p.request.l = l;
  p.c = 1;
  p.q = 0;
  p.respond = [](InvertResponse&&) {};
  p.alive = [] { return true; };
  return p;
}

TEST(ServeQueue, BoundedPushExplicitOverflow) {
  AdmissionQueue q(2);
  EXPECT_TRUE(q.try_push(pending(1)));
  EXPECT_TRUE(q.try_push(pending(2)));
  EXPECT_FALSE(q.try_push(pending(3)));  // full: caller sheds explicitly
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.max_depth_seen(), 2u);
}

TEST(ServeQueue, CoalescesSameKeyOnly) {
  AdmissionQueue q(8);
  ASSERT_TRUE(q.try_push(pending(1, /*l=*/2)));
  ASSERT_TRUE(q.try_push(pending(2, /*l=*/4)));  // different key
  ASSERT_TRUE(q.try_push(pending(3, /*l=*/2)));

  auto batch = q.next_batch(std::chrono::microseconds(0), 8);
  ASSERT_EQ(batch.size(), 2u);  // ids 1 and 3 coalesce; 2 stays queued
  EXPECT_EQ(batch[0].request.id, 1u);
  EXPECT_EQ(batch[1].request.id, 3u);
  EXPECT_EQ(q.depth(), 1u);

  batch = q.next_batch(std::chrono::microseconds(0), 8);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.id, 2u);
}

TEST(ServeQueue, MaxBatchBounds) {
  AdmissionQueue q(8);
  for (std::uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(pending(i)));
  const auto batch = q.next_batch(std::chrono::microseconds(0), 3);
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(q.depth(), 2u);
}

TEST(ServeQueue, StragglerJoinsWithinWindow) {
  AdmissionQueue q(8);
  ASSERT_TRUE(q.try_push(pending(1)));
  std::thread late([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(q.try_push(pending(2)));
  });
  const auto batch = q.next_batch(std::chrono::milliseconds(500), 8);
  late.join();
  EXPECT_EQ(batch.size(), 2u);
}

TEST(ServeQueue, ShutdownWakesAndDrains) {
  AdmissionQueue q(8);
  std::thread stopper([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.shutdown();
  });
  const auto batch = q.next_batch(std::chrono::milliseconds(0), 8);
  stopper.join();
  EXPECT_TRUE(batch.empty());
  EXPECT_FALSE(q.try_push(pending(9)));  // shut down: nothing admitted
}

// ---------------------------------------------------------------------------
// Server robustness with a stub engine (no OpenMP anywhere on these paths)

/// Engine stub: optionally blocks until release(); returns one Measurements
/// per task with a deterministic sample count.
struct GateEngine {
  std::mutex mu;
  std::condition_variable cv;
  bool released = true;
  std::atomic<int> calls{0};
  std::atomic<int> started{0};

  void hold() {
    std::lock_guard<std::mutex> lock(mu);
    released = false;
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
  bool wait_started(int n, int timeout_ms = 5000) {
    const auto stop = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(timeout_ms);
    while (started.load() < n) {
      if (std::chrono::steady_clock::now() > stop) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }

  Engine engine() {
    return [this](const qmc::HubbardModel& model,
                  const std::vector<qmc::FsiBatchTask>& tasks,
                  const qmc::FsiBatchOptions&) {
      started.fetch_add(1);
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return released; });
      }
      calls.fetch_add(1);
      std::vector<qmc::Measurements> out;
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        qmc::Measurements m(model.params().l,
                            model.lattice().num_distance_classes());
        m.add_sample(1.0);
        out.push_back(std::move(m));
      }
      return out;
    };
  }
};

ServerOptions stub_options(const std::string& socket_spec, GateEngine& gate) {
  ServerOptions o;
  o.endpoint = Endpoint::parse(socket_spec);
  o.queue_depth = 2;
  o.batch_window_us = 0;
  o.max_batch = 1;
  o.retry_after_ms = 7;
  o.engine = gate.engine();
  return o;
}

TEST(ServeServer, StubRoundTripOverUnixSocket) {
  GateEngine gate;
  Server server(stub_options(test_socket_path("roundtrip"), gate));
  server.start();

  Client client(server.endpoint());
  const InvertResponse r = client.request(tiny_request());
  EXPECT_EQ(r.status, Status::Ok);
  EXPECT_EQ(r.batch_size, 1u);
  EXPECT_EQ(r.l, 2u);
  EXPECT_FALSE(r.measurements.empty());

  server.stop();
  EXPECT_EQ(server.stats().served_ok, 1u);
}

TEST(ServeServer, OverloadShedsWithRetryAfter) {
  GateEngine gate;
  gate.hold();
  Server server(stub_options(test_socket_path("overload"), gate));
  server.start();
  Client client(server.endpoint());

  // First request occupies the engine (batcher popped it off the queue).
  auto f0 = client.submit(tiny_request(1));
  ASSERT_TRUE(gate.wait_started(1));

  // Two more fill the bounded queue; the rest must shed with RetryAfter —
  // explicit backpressure, not unbounded buffering.
  auto f1 = client.submit(tiny_request(2));
  auto f2 = client.submit(tiny_request(3));
  // Give the reader a moment to admit both before overflowing.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().admitted < 3 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(server.stats().admitted, 3u);

  auto f3 = client.submit(tiny_request(4));
  auto f4 = client.submit(tiny_request(5));
  const InvertResponse r3 = f3.get();
  const InvertResponse r4 = f4.get();
  EXPECT_EQ(r3.status, Status::RetryAfter);
  EXPECT_EQ(r3.retry_after_ms, 7u);
  EXPECT_EQ(r4.status, Status::RetryAfter);

  gate.release();
  EXPECT_EQ(f0.get().status, Status::Ok);
  EXPECT_EQ(f1.get().status, Status::Ok);
  EXPECT_EQ(f2.get().status, Status::Ok);

  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.served_ok, 3u);
  EXPECT_EQ(s.rejected_full, 2u);
  EXPECT_EQ(s.queue_high_water, 2u);
}

TEST(ServeServer, DeadlineExpiredOnArrival) {
  GateEngine gate;
  Server server(stub_options(test_socket_path("dl_arrival"), gate));
  server.start();
  Client client(server.endpoint());

  InvertRequest r = tiny_request();
  r.deadline_us = -1;
  const InvertResponse resp = client.request(std::move(r));
  EXPECT_EQ(resp.status, Status::DeadlineMiss);

  server.stop();
  EXPECT_EQ(server.stats().deadline_miss, 1u);
  EXPECT_EQ(server.stats().served_ok, 0u);
  EXPECT_EQ(gate.calls.load(), 0);  // never reached the engine
}

TEST(ServeServer, HugeDeadlineDoesNotOverflowOrExpire) {
  // deadline_us = INT64_MAX used to overflow `arrival_ns + deadline_us *
  // 1000` (signed overflow, UB) and could wrap to a negative deadline that
  // expired instantly.  The server now clamps the budget; the request must
  // be served normally.
  GateEngine gate;
  Server server(stub_options(test_socket_path("huge_dl"), gate));
  server.start();
  Client client(server.endpoint());

  InvertRequest r = tiny_request();
  r.deadline_us = std::numeric_limits<std::int64_t>::max();
  const InvertResponse resp = client.request(std::move(r));
  EXPECT_EQ(resp.status, Status::Ok);
  EXPECT_FALSE(resp.deadline_exceeded);

  server.stop();
  EXPECT_EQ(server.stats().deadline_miss, 0u);
  EXPECT_EQ(server.stats().served_ok, 1u);
}

TEST(ServeServer, DeadlineExpiresWhileQueued) {
  GateEngine gate;
  gate.hold();
  Server server(stub_options(test_socket_path("dl_queue"), gate));
  server.start();
  Client client(server.endpoint());

  auto f0 = client.submit(tiny_request(1));  // blocks the engine
  ASSERT_TRUE(gate.wait_started(1));

  InvertRequest r = tiny_request(2);
  r.deadline_us = 1000;  // 1 ms — will expire while the engine is held
  auto f1 = client.submit(std::move(r));

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.release();

  EXPECT_EQ(f0.get().status, Status::Ok);
  const InvertResponse r1 = f1.get();
  EXPECT_EQ(r1.status, Status::DeadlineMiss);
  EXPECT_GE(r1.queue_wait_us, 1000u);

  server.stop();
  EXPECT_EQ(gate.calls.load(), 1);  // the expired request never executed
}

TEST(ServeServer, MalformedRequestRejectedConnectionSurvives) {
  GateEngine gate;
  Server server(stub_options(test_socket_path("malformed"), gate));
  server.start();
  Client client(server.endpoint());

  InvertRequest bad = tiny_request();
  bad.field.pop_back();  // wrong length
  const InvertResponse r = client.request(std::move(bad));
  EXPECT_EQ(r.status, Status::Malformed);
  EXPECT_NE(r.message.find("field length"), std::string::npos);

  // Same connection keeps working.
  EXPECT_EQ(client.request(tiny_request()).status, Status::Ok);
  server.stop();
}

TEST(ServeServer, WrongSchemaAnsweredMalformed) {
  GateEngine gate;
  Server server(stub_options(test_socket_path("schema"), gate));
  server.start();

  Socket raw = connect_to(server.endpoint());
  auto payload = encode_request(tiny_request());
  const std::uint32_t bad_version = 99;
  std::memcpy(payload.data(), &bad_version, sizeof bad_version);
  std::vector<std::uint8_t> frame;
  append_frame(frame, payload);
  ASSERT_TRUE(raw.send_all(frame.data(), frame.size()));

  FrameParser parser;
  std::vector<std::uint8_t> resp_payload;
  std::uint8_t buf[4096];
  while (!parser.next(resp_payload)) {
    const long got = raw.recv_some(buf, sizeof buf);
    ASSERT_GT(got, 0);
    parser.feed(buf, static_cast<std::size_t>(got));
  }
  const Decoded d = decode_payload(resp_payload.data(), resp_payload.size());
  ASSERT_EQ(d.type, MsgType::InvertResponse);
  EXPECT_EQ(d.response.status, Status::Malformed);
  EXPECT_NE(d.response.message.find("schema"), std::string::npos);
  raw.close();

  // The daemon keeps serving.
  Client client(server.endpoint());
  EXPECT_EQ(client.request(tiny_request()).status, Status::Ok);
  server.stop();
}

TEST(ServeServer, HostileFieldCountAnsweredMalformedDaemonSurvives) {
  // The original remote-DoS shape: a well-framed request whose field-vector
  // length prefix is a wrap-inducing u64.  The decode must fail as a bounds
  // check (answered Malformed), not escape the reader thread as
  // std::length_error and terminate the daemon.
  GateEngine gate;
  Server server(stub_options(test_socket_path("hostile_count"), gate));
  server.start();

  io::WireWriter w;
  w.put_u32(kSchemaVersion);
  w.put_u32(static_cast<std::uint32_t>(MsgType::InvertRequest));
  w.put_u64(77);   // id
  w.put_u32(2);    // lx
  w.put_u32(1);    // ly
  w.put_u32(2);    // l
  w.put_u32(1);    // c
  w.put_i32(0);    // q
  w.put_u64(3);    // seed
  w.put_f64(1.0);  // t
  w.put_f64(2.0);  // u
  w.put_f64(1.0);  // beta
  w.put_i64(0);    // deadline_us
  w.put_u8(0);     // time_dependent
  w.put_u64(0x2000000000000001ULL);  // hostile field count
  w.put_f64(0.0);  // 8 bytes of "field" — matches the wrapped product
  std::vector<std::uint8_t> frame;
  append_frame(frame, w.take());

  Socket raw = connect_to(server.endpoint());
  ASSERT_TRUE(raw.send_all(frame.data(), frame.size()));
  FrameParser parser;
  std::vector<std::uint8_t> resp_payload;
  std::uint8_t buf[4096];
  while (!parser.next(resp_payload)) {
    const long got = raw.recv_some(buf, sizeof buf);
    ASSERT_GT(got, 0);
    parser.feed(buf, static_cast<std::size_t>(got));
  }
  const Decoded d = decode_payload(resp_payload.data(), resp_payload.size());
  ASSERT_EQ(d.type, MsgType::InvertResponse);
  EXPECT_EQ(d.response.status, Status::Malformed);
  raw.close();

  // The daemon keeps serving.
  Client client(server.endpoint());
  EXPECT_EQ(client.request(tiny_request()).status, Status::Ok);
  server.stop();
}

TEST(ServeServer, ModelCacheStaysBounded) {
  // The model cache is keyed on client-supplied (t, u, beta): a client
  // sweeping parameters must not grow server memory without bound.
  GateEngine gate;
  ServerOptions o = stub_options(test_socket_path("model_cache"), gate);
  o.queue_depth = 64;
  Server server(std::move(o));
  server.start();
  Client client(server.endpoint());

  for (int i = 0; i < 12; ++i) {
    InvertRequest r = tiny_request(static_cast<std::uint64_t>(i));
    r.beta = 1.0 + 0.25 * i;  // distinct batch key per request
    ASSERT_EQ(client.request(std::move(r)).status, Status::Ok);
  }
  // A repeat of the most recent key is a cache hit, not a rebuild.
  InvertRequest again = tiny_request(99);
  again.beta = 1.0 + 0.25 * 11;
  ASSERT_EQ(client.request(std::move(again)).status, Status::Ok);

  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.models_built, 12u);      // 12 distinct keys, 1 hit
  EXPECT_LE(s.model_cache_size, 8u);   // kModelCacheCap: old entries evicted
  EXPECT_EQ(s.served_ok, 13u);
}

TEST(ServeServer, TruncatedFrameDisconnectKeepsServing) {
  GateEngine gate;
  Server server(stub_options(test_socket_path("truncated"), gate));
  server.start();

  {
    // Send half a request frame, then vanish mid-request.
    Socket raw = connect_to(server.endpoint());
    std::vector<std::uint8_t> frame;
    append_frame(frame, encode_request(tiny_request()));
    ASSERT_TRUE(raw.send_all(frame.data(), frame.size() / 2));
    raw.close();
  }
  {
    // Oversized declared length: the server answers Malformed and closes.
    Socket raw = connect_to(server.endpoint());
    std::uint8_t header[8];
    const std::uint32_t magic = kFrameMagic;
    const std::uint32_t huge = (64u << 20) + 1;
    std::memcpy(header, &magic, 4);
    std::memcpy(header + 4, &huge, 4);
    ASSERT_TRUE(raw.send_all(header, sizeof header));
    std::uint8_t buf[4096];
    while (raw.recv_some(buf, sizeof buf) > 0) {
    }  // drain until the server closes
  }

  Client client(server.endpoint());
  EXPECT_EQ(client.request(tiny_request()).status, Status::Ok);
  server.stop();
  EXPECT_EQ(server.stats().served_ok, 1u);
}

TEST(ServeServer, DisconnectWhileQueuedCancels) {
  GateEngine gate;
  gate.hold();
  Server server(stub_options(test_socket_path("cancel"), gate));
  server.start();

  Client keeper(server.endpoint());
  auto f0 = keeper.submit(tiny_request(1));  // blocks the engine
  ASSERT_TRUE(gate.wait_started(1));

  {
    Client quitter(server.endpoint());
    auto f1 = quitter.submit(tiny_request(2));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server.stats().admitted < 2 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(server.stats().admitted, 2u);
    // quitter's destructor closes the connection with the request queued.
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.release();

  EXPECT_EQ(f0.get().status, Status::Ok);
  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.served_ok, 1u);
  EXPECT_EQ(s.cancelled, 1u);  // dropped without touching the engine
  EXPECT_EQ(gate.calls.load(), 1);
}

TEST(ServeServer, StopAnswersQueuedWithShuttingDown) {
  GateEngine gate;
  gate.hold();
  Server server(stub_options(test_socket_path("shutdown"), gate));
  server.start();
  Client client(server.endpoint());

  auto f0 = client.submit(tiny_request(1));  // in flight, engine held
  ASSERT_TRUE(gate.wait_started(1));
  auto f1 = client.submit(tiny_request(2));  // queued behind it
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().admitted < 2 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(server.stats().admitted, 2u);

  std::thread stopper([&server] { server.stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.release();  // stop() waits for the in-flight batch
  stopper.join();

  EXPECT_EQ(f0.get().status, Status::Ok);
  EXPECT_EQ(f1.get().status, Status::ShuttingDown);
  EXPECT_EQ(server.stats().shed_shutdown, 1u);
}

TEST(ServeServer, MetricsCountOutcomes) {
  namespace m = obs::metrics;
  const auto base_req = m::total(m::Counter::ServeRequests);
  const auto base_rej = m::total(m::Counter::ServeRejected);
  const auto base_dl = m::total(m::Counter::ServeDeadlineMiss);

  GateEngine gate;
  Server server(stub_options(test_socket_path("metrics"), gate));
  server.start();
  Client client(server.endpoint());
  EXPECT_EQ(client.request(tiny_request()).status, Status::Ok);
  InvertRequest late = tiny_request();
  late.deadline_us = -1;
  EXPECT_EQ(client.request(std::move(late)).status, Status::DeadlineMiss);
  server.stop();

  EXPECT_EQ(m::total(m::Counter::ServeRequests), base_req + 1);
  EXPECT_EQ(m::total(m::Counter::ServeRejected), base_rej);
  EXPECT_EQ(m::total(m::Counter::ServeDeadlineMiss), base_dl + 1);
  EXPECT_GT(m::hist(m::Hist::ServeLatency).count, 0u);
  EXPECT_GT(m::hist(m::Hist::ServeBatchOccupancy).count, 0u);
}

// ---------------------------------------------------------------------------
// Schema v2: trace propagation, timing breakdown, stats endpoint

TEST(ServeServer, ResponseEchoesTraceIdAndBreakdown) {
  GateEngine gate;
  ServerOptions o = stub_options(test_socket_path("trace_echo"), gate);
  o.max_batch = 4;
  Server server(std::move(o));
  server.start();
  Client client(server.endpoint());

  InvertRequest req = tiny_request();
  req.trace_id = 0xABCDEF;
  const InvertResponse r = client.request(std::move(req));
  ASSERT_EQ(r.status, Status::Ok);
  EXPECT_EQ(r.trace_id, 0xABCDEFu);
  // The ns breakdown is filled server-side and consistent with the legacy
  // microsecond fields: queue+batch covers arrival -> engine start.
  EXPECT_GT(r.exec_ns, 0u);
  EXPECT_GE((r.queue_wait_ns + r.batch_wait_ns) / 1000, r.queue_wait_us);
  EXPECT_DOUBLE_EQ(r.batch_occupancy, 0.25);  // 1 request / max_batch 4
  server.stop();
}

TEST(ServeServer, V1ClientGetsV1AnswerFromV2Server) {
  // Impersonate a v1 client on a raw socket: the request is encoded with
  // version 1 and the server must answer in the same dialect so the old
  // decoder keeps working bit-for-bit.
  GateEngine gate;
  Server server(stub_options(test_socket_path("v1_compat"), gate));
  server.start();

  Socket raw = connect_to(server.endpoint());
  InvertRequest req = tiny_request(21);
  std::vector<std::uint8_t> frame;
  append_frame(frame, encode_request(req, /*version=*/1));
  ASSERT_TRUE(raw.send_all(frame.data(), frame.size()));

  FrameParser parser;
  std::vector<std::uint8_t> resp_payload;
  std::uint8_t buf[4096];
  while (!parser.next(resp_payload)) {
    const long got = raw.recv_some(buf, sizeof buf);
    ASSERT_GT(got, 0);
    parser.feed(buf, static_cast<std::size_t>(got));
  }
  const Decoded d = decode_payload(resp_payload.data(), resp_payload.size());
  ASSERT_EQ(d.type, MsgType::InvertResponse);
  EXPECT_EQ(d.schema, 1u);  // answered in the client's dialect
  EXPECT_EQ(d.response.id, 21u);
  EXPECT_EQ(d.response.status, Status::Ok);
  EXPECT_GT(d.response.execute_us + d.response.batch_size, 0u);  // v1 fields
  EXPECT_EQ(d.response.exec_ns, 0u);  // no v2 extension on the wire
  raw.close();
  server.stop();
}

TEST(ServeServer, StatsEndpointReturnsLiveSnapshot) {
  GateEngine gate;
  Server server(stub_options(test_socket_path("stats"), gate));
  server.start();
  Client client(server.endpoint());

  ASSERT_EQ(client.request(tiny_request()).status, Status::Ok);
  const StatsResponse s = client.stats();
  EXPECT_EQ(s.stats_version, kStatsVersion);
  EXPECT_GT(s.uptime_ns, 0u);
  EXPECT_EQ(s.connections, 1u);
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.served_ok, 1u);
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.batched_requests, 1u);
  EXPECT_EQ(s.models_built, 1u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.queue_capacity, 2u);  // stub_options queue_depth
  // The request just served is inside the 10 s rolling window.
  EXPECT_GE(s.latency_s.count, 1u);
  EXPECT_GE(s.occupancy.count, 1u);
  EXPECT_GT(s.latency_s.p50, 0.0);
  EXPECT_LE(s.latency_s.p50, s.latency_s.p99);
  // Stats v2: the daemon identifies its own build over the wire.
  EXPECT_EQ(s.build_version, obs::build_info().version);
  EXPECT_EQ(s.build_git_sha, obs::build_info().git_sha);
  EXPECT_EQ(s.build_type, obs::build_info().build_type);
  EXPECT_FALSE(s.build_compiler.empty());

  // The in-process snapshot is served by the same path.
  const StatsResponse local = server.stats_snapshot();
  EXPECT_EQ(local.served_ok, 1u);
  server.stop();
}

TEST(ServeServer, AccessLogWritesOneJsonLinePerResponse) {
  const std::string log_path = "/tmp/fsi_serve_test_log_" +
                               std::to_string(::getpid()) + ".jsonl";
  std::remove(log_path.c_str());
  GateEngine gate;
  ServerOptions o = stub_options(test_socket_path("access_log"), gate);
  o.access_log = log_path;
  Server server(std::move(o));
  server.start();
  Client client(server.endpoint());

  InvertRequest ok_req = tiny_request(1);
  ok_req.trace_id = 0x77;
  EXPECT_EQ(client.request(std::move(ok_req)).status, Status::Ok);
  InvertRequest late = tiny_request(2);
  late.deadline_us = -1;
  EXPECT_EQ(client.request(std::move(late)).status, Status::DeadlineMiss);
  server.stop();

  std::ifstream in(log_path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"trace_id\":119"), std::string::npos);  // 0x77
  EXPECT_NE(lines[0].find("\"exec_ns\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\":\"deadline-miss\""), std::string::npos);
  std::remove(log_path.c_str());
}

TEST(ServeClient, StitchedTraceSpansOnClientTimeline) {
  // With tracing enabled the client auto-assigns trace ids, records the
  // request RTT, and synthesizes the server-side breakdown onto its own
  // timeline — one artifact shows the whole journey.
  obs::clear();
  obs::set_enabled(true);
  {
    GateEngine gate;
    Server server(stub_options(test_socket_path("stitch"), gate));
    server.start();
    Client client(server.endpoint());
    const InvertResponse r = client.request(tiny_request());
    ASSERT_EQ(r.status, Status::Ok);
    EXPECT_NE(r.trace_id, 0u);  // auto-assigned because tracing is on
    server.stop();
  }
  bool saw_rtt = false, saw_exec = false;
  for (const auto& s : obs::summary()) {
    if (s.name == "serve.client.rtt") saw_rtt = true;
    if (s.name == "serve.server.exec") saw_exec = true;
  }
  EXPECT_TRUE(saw_rtt);
  EXPECT_TRUE(saw_exec);
  const std::string json = obs::chrome_trace_json();
  EXPECT_NE(json.find("trace_id"), std::string::npos);
  obs::set_enabled(false);
  obs::clear();
}

// ---------------------------------------------------------------------------
// OpenMetrics HTTP scrape endpoint

/// One raw HTTP/1.1 request against the exporter; returns everything the
/// server sent before Connection: close.
std::string http_get(const Endpoint& ep, const std::string& request) {
  Socket sock = connect_to(ep);
  EXPECT_TRUE(sock.send_all(request.data(), request.size()));
  std::string out;
  char buf[4096];
  long got;
  while ((got = sock.recv_some(buf, sizeof buf)) > 0)
    out.append(buf, static_cast<std::size_t>(got));
  return out;
}

std::string http_body(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

TEST(ServeMetricsHttp, LiveScrapePassesTheGrammarChecker) {
  obs::metrics::add(obs::metrics::Counter::ServeRequests, 3);
  MetricsExporter exporter(Endpoint::parse("tcp:127.0.0.1:0"));
  exporter.start();

  const std::string resp =
      http_get(exporter.endpoint(),
               "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
  exporter.stop();

  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("application/openmetrics-text"), std::string::npos);
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);

  fsi::testing::OpenMetricsChecker checker;
  EXPECT_TRUE(checker.check(http_body(resp))) << checker.error();
  EXPECT_GE(checker.value_of("fsi_serve_requests_total"), 3.0);
  EXPECT_EQ(exporter.requests_served(), 1u);
}

TEST(ServeMetricsHttp, HealthzAndErrorPaths) {
  MetricsExporter exporter(Endpoint::parse("tcp:127.0.0.1:0"));
  exporter.start();
  const Endpoint ep = exporter.endpoint();

  EXPECT_NE(http_get(ep, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                .find("HTTP/1.1 200 OK"),
            std::string::npos);
  EXPECT_NE(http_get(ep, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n")
                .find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(http_get(ep, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  EXPECT_NE(http_get(ep, "garbage\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);
  exporter.stop();
}

TEST(ServeMetricsHttp, SurvivesAbruptDisconnectAndServesNextClient) {
  MetricsExporter exporter(Endpoint::parse("tcp:127.0.0.1:0"));
  exporter.start();
  {
    // Client connects and leaves without sending a full request: the
    // exporter's read timeout must reclaim the serving thread.
    Socket rude = connect_to(exporter.endpoint());
    rude.send_all("GET /metr", 9);
    rude.close();
  }
  const std::string resp = http_get(
      exporter.endpoint(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  exporter.stop();
}

TEST(ServeMetricsHttp, StopUnblocksAndStartupFailureThrows) {
  MetricsExporter exporter(Endpoint::parse("tcp:127.0.0.1:0"));
  exporter.start();
  const int port = exporter.endpoint().port;
  ASSERT_GT(port, 0);
  // A second exporter on the same resolved port cannot bind.
  MetricsExporter clash(
      Endpoint::parse("tcp:127.0.0.1:" + std::to_string(port)));
  EXPECT_THROW(clash.start(), util::CheckError);
  exporter.stop();   // returns promptly with no client connected
  exporter.stop();   // idempotent
}

}  // namespace
