/// Tests for the fsi::obs::health layer: histogram/gauge/accumulator
/// mechanics, env-flag parsing, threshold classification, the too-large
/// wrap_interval failure mode (the check the monitor exists to catch),
/// residual/condition recording inside a real FSI call, drift-stat reset on
/// re-seed, and schema validation of the health + bench-telemetry JSON.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "fsi/obs/env.hpp"
#include "fsi/obs/health.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/obs/telemetry.hpp"
#include "fsi/qmc/greens.hpp"
#include "fsi/selinv/fsi.hpp"

#include "json_checker.hpp"

namespace {

using namespace fsi;
using dense::index_t;
using fsi::testing::JsonChecker;
namespace health = obs::health;
namespace metrics = obs::metrics;

/// Every test runs on clean, enabled health state with default thresholds;
/// state is wiped again on exit so tests stay order-independent.
class ObsHealth : public ::testing::Test {
 protected:
  void SetUp() override { clean(); }
  void TearDown() override { clean(); }

  static void clean() {
    health::set_enabled(true);
    health::set_sample_every(4);
    health::set_thresholds(health::Thresholds{});
    health::reset();
  }

  static const health::CheckRow& row(const health::HealthReport& rep,
                                     const std::string& name) {
    for (const health::CheckRow& r : rep.rows)
      if (r.name == name) return r;
    static health::CheckRow missing;
    ADD_FAILURE() << "no check row named " << name;
    return missing;
  }
};

qmc::HubbardModel make_model(index_t nx, index_t l, double u, double beta) {
  qmc::HubbardParams p;
  p.t = 1.0;
  p.u = u;
  p.beta = beta;
  p.l = l;
  return qmc::HubbardModel(qmc::Lattice::chain(nx), p);
}

// -- metrics substrate -------------------------------------------------------

TEST_F(ObsHealth, HistogramStatsAndBuckets) {
  metrics::record(metrics::Hist::WrapDrift, 1e-12);
  metrics::record(metrics::Hist::WrapDrift, 1e-3);
  metrics::record(metrics::Hist::WrapDrift, 2.5);

  const metrics::HistSnapshot s = metrics::hist(metrics::Hist::WrapDrift);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1e-12);
  EXPECT_DOUBLE_EQ(s.max, 2.5);
  EXPECT_DOUBLE_EQ(s.last, 2.5);
  EXPECT_NEAR(s.mean(), (1e-12 + 1e-3 + 2.5) / 3.0, 1e-12);
  // Decade buckets: 1e-12 -> decade -12, 1e-3 -> -3, 2.5 -> 0.
  EXPECT_EQ(s.buckets[-12 - metrics::kHistMinDecade], 1u);
  EXPECT_EQ(s.buckets[-3 - metrics::kHistMinDecade], 1u);
  EXPECT_EQ(s.buckets[0 - metrics::kHistMinDecade], 1u);
}

TEST_F(ObsHealth, HistogramBucketEdgeCases) {
  // Non-positive values land in the first bucket, infinities in the last.
  EXPECT_EQ(metrics::hist_bucket(0.0), 0);
  EXPECT_EQ(metrics::hist_bucket(-1.0), 0);
  EXPECT_EQ(metrics::hist_bucket(1e-30), 0);   // below the smallest decade
  EXPECT_EQ(metrics::hist_bucket(1e30), metrics::kHistBuckets - 1);
  EXPECT_EQ(metrics::hist_bucket(
                std::numeric_limits<double>::infinity()),
            metrics::kHistBuckets - 1);
}

TEST_F(ObsHealth, HistogramMergesAcrossThreads) {
  constexpr int kPerThread = 1000;
  auto worker = [] {
    for (int i = 0; i < kPerThread; ++i)
      metrics::record(metrics::Hist::SelResidual, 1e-9);
  };
  std::thread a(worker), b(worker);
  a.join();
  b.join();
  metrics::record(metrics::Hist::SelResidual, 1e-9);
  EXPECT_EQ(metrics::hist(metrics::Hist::SelResidual).count,
            2u * kPerThread + 1u);
}

TEST_F(ObsHealth, GaugesAndAccumulators) {
  metrics::set(metrics::Gauge::WrapInterval, 8.0);
  EXPECT_DOUBLE_EQ(metrics::get(metrics::Gauge::WrapInterval), 8.0);

  metrics::reset(metrics::Accum::HealthCheck);
  metrics::add_seconds(metrics::Accum::HealthCheck, 0.25);
  metrics::add_seconds(metrics::Accum::HealthCheck, 0.5);
  EXPECT_DOUBLE_EQ(metrics::seconds(metrics::Accum::HealthCheck), 0.75);
}

// -- env parsing -------------------------------------------------------------

TEST_F(ObsHealth, EnvFlagParsesFalsyAndTruthyValues) {
  ASSERT_EQ(unsetenv("FSI_TEST_FLAG"), 0);
  EXPECT_TRUE(obs::env_flag("FSI_TEST_FLAG", true));
  EXPECT_FALSE(obs::env_flag("FSI_TEST_FLAG", false));

  for (const char* falsy : {"", "0", "false", "FALSE", "off", "Off", "no"}) {
    ASSERT_EQ(setenv("FSI_TEST_FLAG", falsy, 1), 0);
    EXPECT_FALSE(obs::env_flag("FSI_TEST_FLAG", true)) << '"' << falsy << '"';
  }
  for (const char* truthy : {"1", "true", "on", "yes", "2", "anything"}) {
    ASSERT_EQ(setenv("FSI_TEST_FLAG", truthy, 1), 0);
    EXPECT_TRUE(obs::env_flag("FSI_TEST_FLAG", false)) << '"' << truthy << '"';
  }
  unsetenv("FSI_TEST_FLAG");
}

// -- classification ----------------------------------------------------------

TEST_F(ObsHealth, ThresholdClassification) {
  health::record_drift(1e-9);  // below warn
  EXPECT_EQ(row(health::report(), "wrap_drift").status, health::Status::Ok);

  health::record_drift(1e-5);  // >= warn, < fail
  {
    const health::HealthReport rep = health::report();
    EXPECT_EQ(row(rep, "wrap_drift").status, health::Status::Warn);
    EXPECT_EQ(rep.overall, health::Status::Warn);
  }

  health::record_drift(0.5);  // >= fail
  {
    const health::HealthReport rep = health::report();
    EXPECT_EQ(row(rep, "wrap_drift").status, health::Status::Fail);
    EXPECT_EQ(rep.overall, health::Status::Fail);
    EXPECT_EQ(rep.drift_history.size(), 3u);
    EXPECT_DOUBLE_EQ(rep.drift_history.back(), 0.5);
  }
}

TEST_F(ObsHealth, NonfiniteObservationIsUnconditionalFail) {
  health::record_nonfinite("unit.test");
  const health::HealthReport rep = health::report();
  EXPECT_EQ(row(rep, "nonfinite").status, health::Status::Fail);
  EXPECT_EQ(row(rep, "nonfinite").note, "unit.test");
  EXPECT_EQ(rep.overall, health::Status::Fail);
}

TEST_F(ObsHealth, DisabledHooksRecordNothing) {
  health::set_enabled(false);
  health::record_drift(1.0);
  health::record_cond1(1e20);
  health::record_residual(1.0);
  health::record_nonfinite("ignored");
  EXPECT_FALSE(health::should_sample_residual());
  health::set_enabled(true);

  const health::HealthReport rep = health::report();
  for (const char* name : {"wrap_drift", "cond1_reduced", "sel_residual",
                           "nonfinite"})
    EXPECT_EQ(row(rep, name).count, 0u) << name;
  EXPECT_EQ(rep.overall, health::Status::Ok);
}

TEST_F(ObsHealth, ResidualSamplingPeriod) {
  health::set_sample_every(3);
  int sampled = 0;
  for (int i = 0; i < 9; ++i)
    if (health::should_sample_residual()) ++sampled;
  EXPECT_EQ(sampled, 3);

  health::set_sample_every(0);
  EXPECT_FALSE(health::should_sample_residual());
}

// -- the failure mode the monitor exists for ---------------------------------

TEST_F(ObsHealth, TooLargeWrapIntervalTripsWarnOrFail) {
  // A stiff Hubbard chain (strong coupling, low temperature) wrapped for a
  // full lap without stabilisation: the chain-product round-off must show
  // up as wrap drift beyond the WARN threshold.  The identical engine with
  // a sane wrap interval stays OK — this pins down the signal, not noise.
  const index_t l = 32;
  qmc::HubbardModel model = make_model(4, l, /*u=*/6.0, /*beta=*/8.0);
  util::Rng rng(4242);
  qmc::HsField h(l, 4, rng);

  qmc::EqualTimeGreens sane(model, h, qmc::Spin::Up, 4, /*wrap_interval=*/4);
  for (index_t s = 0; s < l; ++s) sane.advance();
  const health::HealthReport good = health::report();
  EXPECT_EQ(row(good, "wrap_drift").status, health::Status::Ok)
      << "sane wrap interval drifted to " << row(good, "wrap_drift").worst;

  health::reset();
  qmc::EqualTimeGreens lazy(model, h, qmc::Spin::Up, 4, /*wrap_interval=*/l);
  for (index_t s = 0; s < l; ++s) lazy.advance();
  const health::HealthReport bad = health::report();
  EXPECT_GE(row(bad, "wrap_drift").count, 1u);
  EXPECT_NE(row(bad, "wrap_drift").status, health::Status::Ok)
      << "wrap_interval=" << l << " only drifted to "
      << row(bad, "wrap_drift").worst;
  EXPECT_NE(bad.overall, health::Status::Ok);
}

TEST_F(ObsHealth, ReseedClearsDriftStatistics) {
  qmc::HubbardModel model = make_model(4, 16, /*u=*/4.0, /*beta=*/4.0);
  util::Rng rng(607);
  qmc::HsField h(16, 4, rng);
  qmc::EqualTimeGreens eng(model, h, qmc::Spin::Up, 4, /*wrap_interval=*/4);
  for (int s = 0; s < 16; ++s) eng.advance();
  EXPECT_GT(eng.recomputes(), 0);
  EXPECT_GT(eng.max_drift(), 0.0);

  eng.reseed();
  EXPECT_DOUBLE_EQ(eng.last_drift(), 0.0);
  EXPECT_DOUBLE_EQ(eng.max_drift(), 0.0);
  EXPECT_EQ(eng.recomputes(), 1);  // the re-seeding recompute itself
}

// -- recording inside a real FSI call ----------------------------------------

TEST_F(ObsHealth, FsiRecordsConditionAndResidual) {
  health::set_sample_every(1);  // force the spot check on this call
  qmc::HubbardModel model = make_model(6, 16, /*u=*/2.0, /*beta=*/2.0);
  util::Rng rng(11);
  qmc::HsField h(16, 6, rng);
  pcyclic::PCyclicMatrix m = model.build_m(h, qmc::Spin::Up);

  selinv::FsiOptions opts;
  opts.c = 4;
  opts.pattern = pcyclic::Pattern::Columns;
  util::Rng frng(7);
  selinv::fsi(m, opts, frng);

  EXPECT_GE(metrics::hist(metrics::Hist::Cond1Reduced).count, 1u);
  EXPECT_GE(metrics::hist(metrics::Hist::SelResidual).count, 1u);
  // A healthy selected inverse satisfies its defining identity to rounding.
  EXPECT_LT(metrics::hist(metrics::Hist::SelResidual).max, 1e-8);
  EXPECT_EQ(health::report().overall, health::Status::Ok);
}

// -- JSON schemas ------------------------------------------------------------

TEST_F(ObsHealth, HealthJsonMatchesSchema) {
  health::record_drift(1e-9);
  health::record_cond1(1e4);
  health::record_residual(1e-13);

  JsonChecker doc(health::report().json());
  ASSERT_TRUE(doc.parse());
  EXPECT_EQ(doc.strings_for("schema").count(health::kHealthSchema), 1u);
  const std::set<std::string>& names = doc.strings_for("name");
  for (const char* check : {"wrap_drift", "cond1_reduced", "sel_residual",
                            "nonfinite", "fp_flags"})
    EXPECT_EQ(names.count(check), 1u) << check;
  EXPECT_EQ(doc.strings_for("overall").count("OK"), 1u);
}

TEST_F(ObsHealth, BenchTelemetryJsonMatchesSchema) {
  obs::BenchTelemetry t("unit_test");
  t.add_info("N", 48.0);
  t.add_info("note", "schema \"check\"");
  t.add_metric("speed", 12.5, "gflops", /*gate=*/true);
  t.add_metric("resid", 1e-12, "rel_err", false, /*higher_is_better=*/false);

  JsonChecker doc(t.json());
  ASSERT_TRUE(doc.parse());
  EXPECT_EQ(doc.strings_for("schema").count(obs::kBenchSchema), 1u);
  EXPECT_EQ(doc.strings_for("bench").count("unit_test"), 1u);
  const std::set<std::string>& keys = doc.strings_for("key");
  EXPECT_EQ(keys.count("speed"), 1u);
  EXPECT_EQ(keys.count("resid"), 1u);
  // The embedded health report rides along under the same document.
  EXPECT_EQ(doc.strings_for("schema").count(health::kHealthSchema), 1u);
}

}  // namespace
