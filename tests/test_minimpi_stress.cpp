/// Stress and interleaving tests for the mini-MPI runtime: message storms,
/// mixed collectives, ring pipelines, and hybrid rank x OpenMP execution of
/// the real Alg. 3 workload.

#include <gtest/gtest.h>

#include <numeric>

#include "fsi/mpi/minimpi.hpp"
#include "fsi/qmc/multi_gf.hpp"
#include "fsi/util/rng.hpp"

namespace {

using namespace fsi;

TEST(MiniMpiStress, ManyMessagesManyTagsStayOrderedPerTag) {
  const int kMessages = 200;
  mpi::run(2, [&](mpi::Communicator& comm) {
    if (comm.rank() == 0) {
      util::Rng rng(31);
      // Interleave two tag streams in random order.
      std::vector<int> order;
      for (int i = 0; i < kMessages; ++i) order.push_back(i % 2);
      for (int i = 0, c0 = 0, c1 = 0; i < kMessages; ++i) {
        const int tag = order[static_cast<std::size_t>(i)];
        const int seq = (tag == 0) ? c0++ : c1++;
        comm.send(1, tag, {double(tag), double(seq)});
      }
    } else {
      for (int tag = 0; tag < 2; ++tag)
        for (int seq = 0; seq < kMessages / 2; ++seq) {
          auto m = comm.recv(0, tag);
          ASSERT_EQ(m[0], double(tag));
          ASSERT_EQ(m[1], double(seq)) << "FIFO violated on tag " << tag;
        }
    }
  });
}

TEST(MiniMpiStress, RingPipeline) {
  // Each rank forwards an accumulating token around a ring twice.
  const int ranks = 5;
  mpi::run(ranks, [&](mpi::Communicator& comm) {
    const int next = (comm.rank() + 1) % ranks;
    const int prev = (comm.rank() + ranks - 1) % ranks;
    if (comm.rank() == 0) {
      comm.send(next, 0, {0.0});
      for (int lap = 0; lap < 2; ++lap) {
        auto token = comm.recv(prev, 0);
        if (lap == 0) {
          comm.send(next, 0, {token[0] + 1.0});
        } else {
          // After two laps the token has been incremented by every rank
          // twice (rank 0 contributes on the resend only).
          EXPECT_EQ(token[0], double(2 * ranks - 1));
        }
      }
    } else {
      for (int lap = 0; lap < 2; ++lap) {
        auto token = comm.recv(prev, 0);
        comm.send(next, 0, {token[0] + 1.0});
      }
    }
  });
}

TEST(MiniMpiStress, CollectivesInterleavedWithPointToPoint) {
  mpi::run(4, [](mpi::Communicator& comm) {
    util::Rng rng(100, static_cast<std::uint64_t>(comm.rank()));
    double checksum = 0.0;
    for (int iter = 0; iter < 25; ++iter) {
      // Point-to-point shuffle: rank r -> (r + 1) % size.
      comm.send((comm.rank() + 1) % 4, 9, {double(comm.rank() + iter)});
      auto got = comm.recv((comm.rank() + 3) % 4, 9);
      checksum += got[0];
      // Then a collective on top.
      auto sum = comm.allreduce_sum({got[0]});
      EXPECT_EQ(sum[0], 4.0 * iter + 0 + 1 + 2 + 3);
      comm.barrier();
    }
    EXPECT_GT(checksum, 0.0);
  });
}

TEST(MiniMpiStress, LargeBuffers) {
  const std::size_t big = 1 << 18;  // 2 MiB of doubles
  mpi::run(2, [&](mpi::Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> data(big);
      std::iota(data.begin(), data.end(), 0.0);
      comm.send(1, 1, std::move(data));
    } else {
      auto data = comm.recv(0, 1);
      ASSERT_EQ(data.size(), big);
      EXPECT_EQ(data[big - 1], double(big - 1));
    }
    std::vector<double> b(big, comm.rank() == 0 ? 2.0 : 0.0);
    comm.bcast(b, 0);
    EXPECT_EQ(b[big / 2], 2.0);
  });
}

TEST(MiniMpiStress, EightRanksReduceMatchesSerialSum) {
  std::vector<double> expected(16, 0.0);
  for (int r = 0; r < 8; ++r)
    for (int i = 0; i < 16; ++i) expected[static_cast<std::size_t>(i)] += r * 16 + i;
  mpi::run(8, [&](mpi::Communicator& comm) {
    std::vector<double> local(16);
    for (int i = 0; i < 16; ++i)
      local[static_cast<std::size_t>(i)] = comm.rank() * 16 + i;
    auto total = comm.reduce_sum(local, 3);
    if (comm.rank() == 3) {
      for (int i = 0; i < 16; ++i)
        EXPECT_EQ(total[static_cast<std::size_t>(i)],
                  expected[static_cast<std::size_t>(i)]);
    }
  });
}

TEST(MiniMpiStress, HybridThreadsPerRankRunAlgorithm3) {
  // ranks x omp-threads variants of the same workload give the same
  // measurements (the Fig. 9 configuration axis, functionally).
  qmc::HubbardParams p;
  p.l = 8;
  p.u = 2.0;
  qmc::HubbardModel model(qmc::Lattice::chain(4), p);

  qmc::MultiGfOptions base;
  base.num_matrices = 4;
  // c = 1 makes every selection complete (q is forced to 0), so SPXX is
  // identical across rank layouts; with c > 1 each rank draws its own q and
  // SPXX becomes a (valid) block-subsampled estimator that differs run to run.
  base.cluster_size = 1;
  base.seed = 5;
  base.measure_time_dependent = true;

  qmc::MultiGfOptions a = base;
  a.num_ranks = 1;
  a.omp_threads_per_rank = 2;
  qmc::MultiGfOptions b = base;
  b.num_ranks = 4;
  b.omp_threads_per_rank = 1;

  auto ra = qmc::run_parallel_fsi(model, a);
  auto rb = qmc::run_parallel_fsi(model, b);
  EXPECT_NEAR(ra.global.density(), rb.global.density(), 1e-8);
  EXPECT_NEAR(ra.global.spxx(1, 0), rb.global.spxx(1, 0), 1e-8);
}

}  // namespace
