/// Tests for the BSOFI structured orthogonal inversion against dense LU.

#include <gtest/gtest.h>

#include <cmath>

#include "fsi/bsofi/bsofi.hpp"
#include "fsi/dense/blas.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::bsofi;
using fsi::testing::expect_close;

class BsofiSizes : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(BsofiSizes, InverseMatchesDenseLu) {
  const auto [n, b] = GetParam();
  util::Rng rng(301, static_cast<std::uint64_t>(n * 100 + b));
  pcyclic::PCyclicMatrix m = pcyclic::PCyclicMatrix::random(n, b, rng);
  Matrix g_bsofi = invert(m);
  Matrix g_lu = invert_dense_lu(m);
  expect_close(g_bsofi, g_lu, 1e-10, "BSOFI vs LU");
}

TEST_P(BsofiSizes, InverseTimesMatrixIsIdentity) {
  const auto [n, b] = GetParam();
  util::Rng rng(302, static_cast<std::uint64_t>(n * 100 + b));
  pcyclic::PCyclicMatrix m = pcyclic::PCyclicMatrix::random(n, b, rng);
  Matrix g = invert(m);
  Matrix prod = dense::matmul(m.to_dense(), g);
  expect_close(prod, Matrix::identity(m.dim()), 1e-10, "M G = I");
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BsofiSizes,
    ::testing::Values(std::make_pair(index_t{3}, index_t{1}),   // degenerate
                      std::make_pair(index_t{3}, index_t{2}),   // corner==sup
                      std::make_pair(index_t{4}, index_t{3}),
                      std::make_pair(index_t{5}, index_t{8}),
                      std::make_pair(index_t{16}, index_t{10}),
                      std::make_pair(index_t{64}, index_t{6})),
    [](const auto& info) {
      return "N" + std::to_string(info.param.first) + "b" +
             std::to_string(info.param.second);
    });

TEST(Bsofi, RDiagonalBlocksAreTriangularAndNonsingular) {
  util::Rng rng(303);
  pcyclic::PCyclicMatrix m = pcyclic::PCyclicMatrix::random(6, 5, rng);
  Bsofi f(m);
  for (index_t i = 0; i < 5; ++i) {
    Matrix r = f.r_diag(i);
    for (index_t j = 0; j < 6; ++j) {
      EXPECT_NE(r(j, j), 0.0) << "R_" << i << " diagonal";
      for (index_t r_i = j + 1; r_i < 6; ++r_i) EXPECT_EQ(r(r_i, j), 0.0);
    }
  }
}

TEST(Bsofi, StructuredRReproducesQtM) {
  // Assemble the structured R from the factorisation accessors and check
  // it matches an (independently computed) dense QR picture: R^-1 from the
  // accessors must invert Q^T M, i.e. M * (R^-1 Q^T) = I was checked above;
  // here we verify the claimed sparsity: R has only diag, superdiag and
  // last-column blocks.
  util::Rng rng(304);
  const index_t n = 4, b = 6;
  pcyclic::PCyclicMatrix m = pcyclic::PCyclicMatrix::random(n, b, rng);
  Bsofi f(m);

  // Assemble R from accessors.
  Matrix r(n * b, n * b);
  for (index_t i = 0; i < b; ++i) {
    Matrix d = f.r_diag(i);
    dense::copy(d, r.block(i * n, i * n, n, n));
    if (i + 1 < b) dense::copy(f.r_sup(i), r.block(i * n, (i + 1) * n, n, n));
    if (i + 2 < b) dense::copy(f.r_last(i), r.block(i * n, (b - 1) * n, n, n));
  }
  // G = R^-1 Q^T  =>  R G should equal Q^T, which is orthogonal: check
  // (R G)(R G)^T = I.
  Matrix g = f.inverse();
  Matrix rg = dense::matmul(r, g);
  Matrix prod(n * b, n * b);
  dense::gemm(dense::Trans::No, dense::Trans::Yes, 1.0, rg, rg, 0.0, prod);
  expect_close(prod, Matrix::identity(n * b), 1e-10, "Q^T orthogonality");
}

TEST(Bsofi, StableOnIllConditionedChains) {
  // Products of many B's with spectral radius > 1 blow up; BSOFI must stay
  // accurate where accuracy is measured against the dense inverse.
  util::Rng rng(305);
  const index_t n = 8, b = 12;
  pcyclic::PCyclicMatrix m(n, b);
  for (index_t i = 0; i < b; ++i) {
    dense::MatrixView bi = m.b(i);
    for (index_t j = 0; j < n; ++j)
      for (index_t r = 0; r < n; ++r) bi(r, j) = rng.uniform(-0.6, 0.6);
    for (index_t d = 0; d < n; ++d) bi(d, d) += 1.2;  // growth factor > 1
  }
  Matrix g_bsofi = invert(m);
  Matrix prod = dense::matmul(m.to_dense(), g_bsofi);
  expect_close(prod, Matrix::identity(m.dim()), 1e-8, "stability");
}

TEST(Bsofi, PartialBlockRowMatchesFullInverse) {
  util::Rng rng(307);
  for (auto [n, b] : {std::make_pair(index_t{3}, index_t{1}),
                      std::make_pair(index_t{4}, index_t{2}),
                      std::make_pair(index_t{5}, index_t{6}),
                      std::make_pair(index_t{16}, index_t{9})}) {
    pcyclic::PCyclicMatrix m = pcyclic::PCyclicMatrix::random(n, b, rng);
    Bsofi f(m);
    Matrix full = f.inverse();
    for (index_t k0 = 0; k0 < b; ++k0) {
      Matrix row = f.inverse_block_row(k0);
      ASSERT_EQ(row.rows(), n);
      ASSERT_EQ(row.cols(), n * b);
      expect_close(row, Matrix::copy_of(full.block(k0 * n, 0, n, n * b)),
                   1e-10, "partial block row");
    }
  }
}

TEST(Bsofi, PartialBlockRowBounds) {
  util::Rng rng(308);
  pcyclic::PCyclicMatrix m = pcyclic::PCyclicMatrix::random(3, 4, rng);
  Bsofi f(m);
  EXPECT_THROW(f.inverse_block_row(4), util::CheckError);
  EXPECT_THROW(f.inverse_block_row(-1), util::CheckError);
}

TEST(Bsofi, AccessorBoundsChecked) {
  util::Rng rng(306);
  pcyclic::PCyclicMatrix m = pcyclic::PCyclicMatrix::random(3, 4, rng);
  Bsofi f(m);
  EXPECT_THROW(f.r_diag(4), util::CheckError);
  EXPECT_THROW(f.r_sup(3), util::CheckError);
  EXPECT_THROW(f.r_last(2), util::CheckError);
}

}  // namespace
