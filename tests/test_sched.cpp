// Tests of the fsi::sched work-stealing batch scheduler and workspace pool,
// and of the determinism + pool-reuse guarantees of the scheduler-driven
// run_parallel_fsi.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "fsi/qmc/multi_gf.hpp"
#include "fsi/sched/scheduler.hpp"
#include "fsi/sched/task_queue.hpp"
#include "fsi/sched/workspace_pool.hpp"

namespace {

using namespace fsi;

// ---------------------------------------------------------------------------
// TaskDeque

TEST(TaskDeque, OwnerPopsInFifoOrder) {
  sched::TaskDeque q;
  for (std::uint32_t t = 0; t < 5; ++t) q.push(t);
  EXPECT_EQ(q.size(), 5u);
  std::uint32_t task = 0;
  for (std::uint32_t t = 0; t < 5; ++t) {
    ASSERT_TRUE(q.pop(task));
    EXPECT_EQ(task, t);
  }
  EXPECT_FALSE(q.pop(task));
}

TEST(TaskDeque, StealHalfTakesBackHalfInOrder) {
  sched::TaskDeque q;
  for (std::uint32_t t = 0; t < 6; ++t) q.push(t);
  std::vector<std::uint32_t> loot;
  EXPECT_EQ(q.steal_half(loot), 3u);
  EXPECT_EQ(loot, (std::vector<std::uint32_t>{3, 4, 5}));
  EXPECT_EQ(q.size(), 3u);
  // Odd size: the thief rounds up.
  loot.clear();
  EXPECT_EQ(q.steal_half(loot), 2u);
  EXPECT_EQ(loot, (std::vector<std::uint32_t>{1, 2}));
  // Empty deque yields nothing.
  loot.clear();
  std::uint32_t task = 0;
  ASSERT_TRUE(q.pop(task));
  EXPECT_EQ(q.steal_half(loot), 0u);
  EXPECT_TRUE(loot.empty());
}

// ---------------------------------------------------------------------------
// BatchScheduler

void run_all_workers(sched::BatchScheduler& s,
                     const std::function<void(int, std::uint32_t)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(s.workers()));
  for (int w = 0; w < s.workers(); ++w)
    threads.emplace_back(
        [&s, &body, w] { s.run_worker(w, [&](std::uint32_t t) { body(w, t); }); });
  for (auto& t : threads) t.join();
}

TEST(BatchScheduler, EveryTaskRunsExactlyOnce) {
  constexpr std::uint32_t kTasks = 64;
  sched::SchedulerOptions opts;
  opts.backoff_us = 0;
  sched::BatchScheduler s(4, kTasks, opts);
  std::vector<std::atomic<int>> ran(kTasks);
  run_all_workers(s, [&](int, std::uint32_t t) {
    ran[t].fetch_add(1, std::memory_order_relaxed);
  });
  std::uint64_t executed = 0;
  for (int w = 0; w < s.workers(); ++w) executed += s.stats(w).executed;
  EXPECT_EQ(executed, kTasks);
  for (std::uint32_t t = 0; t < kTasks; ++t) EXPECT_EQ(ran[t].load(), 1);
}

TEST(BatchScheduler, SkewedBatchTriggersStealing) {
  // All the slow tasks sit in worker 0's preload; the other workers finish
  // their shares instantly and must steal to keep the batch moving.
  constexpr std::uint32_t kTasks = 16;
  sched::SchedulerOptions opts;
  opts.backoff_us = 10;
  sched::BatchScheduler s(4, kTasks, opts);
  run_all_workers(s, [&](int, std::uint32_t t) {
    if (t < kTasks / 4)  // worker 0's contiguous preload
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  EXPECT_GT(s.total_steal_batches(), 0u);
  EXPECT_GT(s.total_stolen_tasks(), 0u);
}

TEST(BatchScheduler, StaticModeNeverSteals) {
  constexpr std::uint32_t kTasks = 16;
  sched::SchedulerOptions opts;
  opts.work_stealing = false;
  opts.backoff_us = 10;
  sched::BatchScheduler s(4, kTasks, opts);
  std::vector<std::atomic<int>> owner(kTasks);
  run_all_workers(s, [&](int w, std::uint32_t t) {
    owner[t].store(w, std::memory_order_relaxed);
    if (t < kTasks / 4) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  EXPECT_EQ(s.total_steal_batches(), 0u);
  EXPECT_EQ(s.total_stolen_tasks(), 0u);
  // Exactly the static contiguous split: task t belongs to worker t*W/T.
  for (std::uint32_t t = 0; t < kTasks; ++t)
    EXPECT_EQ(owner[t].load(), static_cast<int>(t / (kTasks / 4)));
  for (int w = 0; w < 4; ++w) EXPECT_EQ(s.stats(w).executed, kTasks / 4);
}

TEST(BatchScheduler, UnevenTaskCountCoversAllTasks) {
  sched::SchedulerOptions opts;
  opts.backoff_us = 0;
  sched::BatchScheduler s(3, 7, opts);  // 7 tasks, 3 workers
  std::vector<std::atomic<int>> ran(7);
  run_all_workers(s, [&](int, std::uint32_t t) {
    ran[t].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::uint32_t t = 0; t < 7; ++t) EXPECT_EQ(ran[t].load(), 1);
}

TEST(BatchScheduler, MoreWorkersThanTasks) {
  sched::SchedulerOptions opts;
  opts.backoff_us = 0;
  sched::BatchScheduler s(6, 2, opts);
  std::atomic<int> ran{0};
  run_all_workers(s, [&](int, std::uint32_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 2);
}

// ---------------------------------------------------------------------------
// WorkspacePool (local instances — the global pool is exercised end-to-end
// by the MultiGfSched tests below)

TEST(WorkspacePool, RecycledStorageIsReusedAndZeroed) {
  sched::WorkspacePool pool(true, 64 << 20);
  dense::Matrix a = pool.acquire(4, 6);
  a(1, 2) = 42.0;
  const double* ptr = a.data();
  pool.recycle(std::move(a));
  EXPECT_EQ(pool.cached_buffers(), 1u);
  // Same element count (different shape) reuses the buffer, zeroed.
  dense::Matrix b = pool.acquire(6, 4);
  EXPECT_EQ(b.data(), ptr);
  for (dense::index_t j = 0; j < 4; ++j)
    for (dense::index_t i = 0; i < 6; ++i) EXPECT_EQ(b(i, j), 0.0);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_DOUBLE_EQ(pool.hit_rate(), 0.5);
}

TEST(WorkspacePool, AcquireCopyMatchesSource) {
  sched::WorkspacePool pool(true, 64 << 20);
  dense::Matrix src(3, 3);
  for (dense::index_t j = 0; j < 3; ++j)
    for (dense::index_t i = 0; i < 3; ++i) src(i, j) = 10.0 * i + j;
  dense::Matrix copy = pool.acquire_copy(src.view());
  for (dense::index_t j = 0; j < 3; ++j)
    for (dense::index_t i = 0; i < 3; ++i) EXPECT_EQ(copy(i, j), src(i, j));
}

TEST(WorkspacePool, ByteCapDropsExcessBuffers) {
  // Cap small enough that a second cached buffer of this size exceeds the
  // per-shard budget (identical counts land in the same shard).
  sched::WorkspacePool pool(true, 8 * 100 * sizeof(double));
  pool.recycle(pool.acquire(10, 10));
  pool.recycle(pool.acquire(10, 10));
  pool.recycle(pool.acquire(10, 10));
  EXPECT_LE(pool.cached_bytes(), 8 * 100 * sizeof(double));
  pool.clear();
  EXPECT_EQ(pool.cached_bytes(), 0u);
  EXPECT_EQ(pool.cached_buffers(), 0u);
}

TEST(WorkspacePool, DisabledPoolNeverCaches) {
  sched::WorkspacePool pool(false, 64 << 20);
  dense::Matrix a = pool.acquire(4, 4);
  pool.recycle(std::move(a));
  EXPECT_EQ(pool.cached_buffers(), 0u);
  dense::Matrix b = pool.acquire(4, 4);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(WorkspacePool, RecyclingEmptyMatrixIsANoOp) {
  sched::WorkspacePool pool(true, 64 << 20);
  pool.recycle(dense::Matrix());
  EXPECT_EQ(pool.cached_buffers(), 0u);
}

// ---------------------------------------------------------------------------
// run_parallel_fsi: determinism + pool reuse

qmc::MultiGfOptions batch_options(int ranks, int threads,
                                  qmc::Schedule schedule) {
  qmc::MultiGfOptions opt;
  opt.num_matrices = 5;  // deliberately indivisible by every rank count used
  opt.num_ranks = ranks;
  opt.omp_threads_per_rank = threads;
  opt.cluster_size = 2;
  opt.seed = 321;
  opt.schedule = schedule;
  return opt;
}

TEST(MultiGfSched, BitIdenticalAcrossRanksThreadsAndSchedules) {
  fsi::qmc::HubbardParams p;
  p.l = 6;
  p.u = 3.0;
  const qmc::HubbardModel model(qmc::Lattice::chain(3), p);

  const auto baseline =
      run_parallel_fsi(model, batch_options(1, 1, qmc::Schedule::WorkStealing));
  const std::vector<double> expect = baseline.global.serialize();
  ASSERT_FALSE(expect.empty());

  const struct {
    int ranks, threads;
    qmc::Schedule schedule;
  } configs[] = {
      {3, 1, qmc::Schedule::WorkStealing},
      {2, 2, qmc::Schedule::WorkStealing},
      {5, 1, qmc::Schedule::WorkStealing},
      {2, 1, qmc::Schedule::Static},
      {1, 2, qmc::Schedule::Static},
  };
  for (const auto& cfg : configs) {
    const auto r = run_parallel_fsi(
        model, batch_options(cfg.ranks, cfg.threads, cfg.schedule));
    const std::vector<double> got = r.global.serialize();
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
      EXPECT_EQ(got[i], expect[i]) << "ranks=" << cfg.ranks
                                   << " threads=" << cfg.threads << " i=" << i;
  }
}

TEST(MultiGfSched, FineGranularityBitIdenticalToCoarseAcrossRanks) {
  fsi::qmc::HubbardParams p;
  p.l = 6;
  p.u = 3.0;
  const qmc::HubbardModel model(qmc::Lattice::chain(3), p);

  // Coarse single-rank run is the reference: plain Alg. 3 with no graph
  // executor involved at any level.
  auto ref_opt = batch_options(1, 1, qmc::Schedule::WorkStealing);
  ref_opt.granularity = qmc::Granularity::Coarse;
  const auto baseline = run_parallel_fsi(model, ref_opt);
  const std::vector<double> expect = baseline.global.serialize();
  ASSERT_FALSE(expect.empty());

  const struct {
    int ranks;
    qmc::Schedule schedule;
    qmc::Granularity granularity;
  } configs[] = {
      {1, qmc::Schedule::WorkStealing, qmc::Granularity::Fine},
      {2, qmc::Schedule::WorkStealing, qmc::Granularity::Fine},
      {4, qmc::Schedule::WorkStealing, qmc::Granularity::Fine},
      {2, qmc::Schedule::Static, qmc::Granularity::Fine},
      {4, qmc::Schedule::Static, qmc::Granularity::Fine},
      {2, qmc::Schedule::WorkStealing, qmc::Granularity::Coarse},
  };
  for (const auto& cfg : configs) {
    auto opt = batch_options(cfg.ranks, 1, cfg.schedule);
    opt.granularity = cfg.granularity;
    const auto r = run_parallel_fsi(model, opt);
    const std::vector<double> got = r.global.serialize();
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
      EXPECT_EQ(got[i], expect[i])
          << "ranks=" << cfg.ranks << " fine="
          << (cfg.granularity == qmc::Granularity::Fine) << " steal="
          << (cfg.schedule == qmc::Schedule::WorkStealing) << " i=" << i;
  }
}

TEST(MultiGfSched, FineGranularityReportsGraphTelemetry) {
  fsi::qmc::HubbardParams p;
  p.l = 6;
  p.u = 2.0;
  const qmc::HubbardModel model(qmc::Lattice::chain(3), p);
  auto opt = batch_options(2, 1, qmc::Schedule::WorkStealing);
  opt.granularity = qmc::Granularity::Fine;

  const auto r = run_parallel_fsi(model, opt);
  EXPECT_DOUBLE_EQ(r.global.samples(), 5.0);
  EXPECT_EQ(r.sched.tasks, 5u);
  EXPECT_EQ(r.sched.workers, 2);
  // Per task and spin: 1 build + b cluster products + 1 BSOFI + seed walks,
  // plus 1 measure node per task — far more nodes than tasks.
  EXPECT_GT(r.sched.graph_nodes, 5u * 4u);
  EXPECT_GT(r.sched.critical_path_seconds, 0.0);
  EXPECT_GT(r.sched.stage_build_seconds, 0.0);
  EXPECT_GT(r.sched.stage_cls_seconds, 0.0);
  EXPECT_GT(r.sched.stage_bsofi_seconds, 0.0);
  EXPECT_GT(r.sched.stage_wrap_seconds, 0.0);
  EXPECT_GT(r.sched.stage_measure_seconds, 0.0);
  EXPECT_EQ(r.sched.busy_seconds.size(), 2u);
  EXPECT_GT(r.sched.busy_max_seconds, 0.0);

  // Coarse mode keeps the graph fields at zero but still exports the
  // per-rank busy vector.
  opt.granularity = qmc::Granularity::Coarse;
  const auto coarse = run_parallel_fsi(model, opt);
  EXPECT_EQ(coarse.sched.graph_nodes, 0u);
  EXPECT_DOUBLE_EQ(coarse.sched.critical_path_seconds, 0.0);
  EXPECT_EQ(coarse.sched.busy_seconds.size(), 2u);
}

TEST(MultiGfSched, SecondSameShapeBatchHitsPoolWithoutFreshAllocations) {
  fsi::qmc::HubbardParams p;
  p.l = 6;
  p.u = 2.0;
  const qmc::HubbardModel model(qmc::Lattice::chain(3), p);
  auto opt = batch_options(1, 1, qmc::Schedule::WorkStealing);

  if (!sched::WorkspacePool::global().enabled())
    GTEST_SKIP() << "FSI_SCHED_POOL disabled in the environment";

  // Warmup batch populates the pool with every shape this workload needs.
  (void)run_parallel_fsi(model, opt);
  // A single-rank rerun replays the identical acquire sequence, so every
  // acquire must be served from the pool: zero fresh allocations.
  const auto second = run_parallel_fsi(model, opt);
  EXPECT_EQ(second.sched.pool_misses, 0u)
      << "steady-state batch should be allocation-free";
  EXPECT_GT(second.sched.pool_hits, 0u);
  EXPECT_DOUBLE_EQ(second.sched.pool_hit_rate(), 1.0);
}

TEST(MultiGfSched, MultiRankSteadyStateHitRateIsHigh) {
  fsi::qmc::HubbardParams p;
  p.l = 6;
  p.u = 2.0;
  const qmc::HubbardModel model(qmc::Lattice::chain(3), p);
  auto opt = batch_options(3, 1, qmc::Schedule::WorkStealing);
  opt.num_matrices = 9;

  if (!sched::WorkspacePool::global().enabled())
    GTEST_SKIP() << "FSI_SCHED_POOL disabled in the environment";

  (void)run_parallel_fsi(model, opt);
  const auto second = run_parallel_fsi(model, opt);
  EXPECT_GT(second.sched.pool_hit_rate(), 0.9)
      << "hits=" << second.sched.pool_hits
      << " misses=" << second.sched.pool_misses;
}

TEST(MultiGfSched, SkewedBatchReportsBalanceTelemetry) {
  fsi::qmc::HubbardParams p;
  p.l = 6;
  p.u = 2.0;
  const qmc::HubbardModel model(qmc::Lattice::chain(3), p);
  auto opt = batch_options(2, 1, qmc::Schedule::WorkStealing);
  opt.num_matrices = 8;
  opt.heavy_fraction = 0.25;  // heavy front chunk lands on rank 0's preload

  const auto r = run_parallel_fsi(model, opt);
  EXPECT_DOUBLE_EQ(r.global.samples(), 8.0);
  EXPECT_EQ(r.sched.tasks, 8u);
  EXPECT_GE(r.sched.balance(), 1.0);
  EXPECT_GT(r.sched.busy_max_seconds, 0.0);
}

}  // namespace
