/// Unit tests for the utility layer: flop accounting, RNG, table, CLI.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fsi/util/check.hpp"
#include "fsi/util/cli.hpp"
#include "fsi/util/flops.hpp"
#include "fsi/util/rng.hpp"
#include "fsi/util/table.hpp"
#include "fsi/util/timer.hpp"

namespace {

using namespace fsi;

TEST(Flops, AccumulatesAcrossThreads) {
  util::flops::reset();
  util::flops::Scope scope;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([] { util::flops::add(100); });
  for (auto& w : workers) w.join();
  util::flops::add(1);
  EXPECT_EQ(scope.elapsed(), 401u);
}

TEST(Flops, CountsSurviveThreadExit) {
  util::flops::reset();
  {
    std::thread t([] { util::flops::add(7); });
    t.join();
  }
  EXPECT_GE(util::flops::total(), 7u);
}

TEST(StageTimer, NamedBucketsKeepInsertionOrder) {
  util::StageTimer timer;
  {
    util::StageTimer::Guard g(timer, "cls");
  }
  {
    util::StageTimer::Guard g(timer, "bsofi");
  }
  {
    util::StageTimer::Guard g(timer, "cls");  // accumulates, no new bucket
  }
  ASSERT_EQ(timer.size(), 2u);
  std::vector<std::string> names;
  for (const auto& [name, s] : timer) {
    names.push_back(name);
    EXPECT_GE(s, 0.0);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"cls", "bsofi"}));
  EXPECT_GE(timer.seconds("cls"), 0.0);
  EXPECT_EQ(timer.seconds("missing"), 0.0);
}

TEST(StageTimer, ResetZeroesValuesButKeepsNames) {
  util::StageTimer timer;
  timer.bucket("wrap") = 1.5;
  timer.bucket("cls") = 0.5;
  timer.reset();
  ASSERT_EQ(timer.size(), 2u);
  EXPECT_EQ(timer.seconds("wrap"), 0.0);
  EXPECT_EQ(timer.seconds("cls"), 0.0);
}

TEST(StageTimer, BucketReferencesSurviveLaterInsertions) {
  util::StageTimer timer;
  double& first = timer.bucket("first");
  // Creating many more buckets must not invalidate the earlier reference.
  for (int i = 0; i < 100; ++i) timer.bucket("b" + std::to_string(i));
  first += 2.0;
  EXPECT_EQ(timer.seconds("first"), 2.0);
}

TEST(Rng, DeterministicPerSeed) {
  util::Rng a(123), b(123), c(124);
  EXPECT_EQ(a(), b());
  util::Rng a2(123);
  EXPECT_NE(a2(), c());
}

TEST(Rng, StreamsAreIndependent) {
  util::Rng a(1, 0), b(1, 1);
  bool differs = false;
  for (int i = 0; i < 8; ++i)
    if (a() != b()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange) {
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, SpinIsPlusMinusOne) {
  util::Rng rng(6);
  int plus = 0;
  for (int i = 0; i < 1000; ++i) {
    const int s = rng.spin();
    EXPECT_TRUE(s == 1 || s == -1);
    if (s == 1) ++plus;
  }
  // Unbiased within loose bounds.
  EXPECT_GT(plus, 400);
  EXPECT_LT(plus, 600);
}

TEST(Table, FormatsAlignedColumns) {
  util::Table t({"N", "Gflops"});
  t.add_row({"256", "12.5"});
  t.add_row({"1024", "180.0"});
  const std::string s = t.str();
  EXPECT_NE(s.find("N"), std::string::npos);
  EXPECT_NE(s.find("180.0"), std::string::npos);
  EXPECT_NE(s.find('|'), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), util::CheckError);
}

TEST(Cli, ParsesBothSyntaxes) {
  const char* argv[] = {"prog", "--N", "400", "--c=10", "--verbose", "--x", "1.5"};
  util::Cli cli(7, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("N", 0), 400);
  EXPECT_EQ(cli.get_int("c", 0), 10);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 1.5);
  EXPECT_EQ(cli.get_int("missing", -7), -7);
}

}  // namespace
