/// Tests for the block-tridiagonal selected inversion (the paper's
/// future-work extension): every block against a dense inverse, move
/// validity, and the column walk.

#include <gtest/gtest.h>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/tridiag/tridiag.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::tridiag;
using fsi::testing::expect_close;

Matrix dense_block(const Matrix& g, index_t n, index_t i, index_t j) {
  return Matrix::copy_of(g.block(i * n, j * n, n, n));
}

TEST(BlockTridiagonal, DenseAssembly) {
  util::Rng rng(801);
  BlockTridiagonalMatrix t = BlockTridiagonalMatrix::random(3, 4, rng);
  Matrix d = t.to_dense();
  ASSERT_EQ(d.rows(), 12);
  expect_close(dense_block(d, 3, 1, 1), Matrix::copy_of(t.d(1)), 0.0, "D");
  expect_close(dense_block(d, 3, 2, 1), Matrix::copy_of(t.a(2)), 0.0, "A");
  expect_close(dense_block(d, 3, 1, 2), Matrix::copy_of(t.c(2)), 0.0, "C");
  EXPECT_EQ(d(0, 6), 0.0);  // outside the tridiagonal band
  EXPECT_EQ(d(9, 0), 0.0);
}

TEST(BlockTridiagonal, AccessorBounds) {
  util::Rng rng(802);
  BlockTridiagonalMatrix t = BlockTridiagonalMatrix::random(2, 3, rng);
  EXPECT_THROW(t.d(3), util::CheckError);
  EXPECT_THROW(t.a(0), util::CheckError);  // A_0 does not exist
  EXPECT_THROW(t.c(3), util::CheckError);
}

class TridiagSizes : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(TridiagSizes, DiagonalBlocksMatchDenseInverse) {
  const auto [n, l] = GetParam();
  util::Rng rng(803, static_cast<std::uint64_t>(n * 100 + l));
  BlockTridiagonalMatrix t = BlockTridiagonalMatrix::random(n, l, rng);
  Matrix g = invert_dense_lu(t);
  TridiagSelectedInverse sel(t);
  for (index_t i = 0; i < l; ++i)
    expect_close(sel.diag_block(i), dense_block(g, n, i, i), 1e-10,
                 "diag block");
}

TEST_P(TridiagSizes, EveryBlockMatchesDenseInverse) {
  const auto [n, l] = GetParam();
  util::Rng rng(804, static_cast<std::uint64_t>(n * 100 + l));
  BlockTridiagonalMatrix t = BlockTridiagonalMatrix::random(n, l, rng);
  Matrix g = invert_dense_lu(t);
  TridiagSelectedInverse sel(t);
  for (index_t i = 0; i < l; ++i)
    for (index_t j = 0; j < l; ++j)
      expect_close(sel.block(i, j), dense_block(g, n, i, j), 1e-9,
                   ("block (" + std::to_string(i) + "," + std::to_string(j) +
                    ")").c_str());
}

TEST_P(TridiagSizes, ColumnMatchesDenseInverse) {
  const auto [n, l] = GetParam();
  util::Rng rng(805, static_cast<std::uint64_t>(n * 100 + l));
  BlockTridiagonalMatrix t = BlockTridiagonalMatrix::random(n, l, rng);
  Matrix g = invert_dense_lu(t);
  TridiagSelectedInverse sel(t);
  for (index_t j : {index_t{0}, l / 2, l - 1}) {
    auto col = sel.column(j);
    ASSERT_EQ(col.size(), static_cast<std::size_t>(l));
    for (index_t i = 0; i < l; ++i)
      expect_close(col[static_cast<std::size_t>(i)], dense_block(g, n, i, j),
                   1e-9, "column block");
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagSizes,
                         ::testing::Values(std::make_pair(index_t{1}, index_t{1}),
                                           std::make_pair(index_t{3}, index_t{2}),
                                           std::make_pair(index_t{4}, index_t{7}),
                                           std::make_pair(index_t{8}, index_t{5})),
                         [](const auto& info) {
                           return "N" + std::to_string(info.param.first) + "L" +
                                  std::to_string(info.param.second);
                         });

TEST(Tridiag, MoveValidityIsEnforced) {
  util::Rng rng(806);
  BlockTridiagonalMatrix t = BlockTridiagonalMatrix::random(2, 4, rng);
  TridiagSelectedInverse sel(t);
  Matrix g = sel.diag_block(1);
  EXPECT_THROW(sel.up(1, 0, g), util::CheckError);    // up above the diagonal side
  EXPECT_THROW(sel.down(1, 2, g), util::CheckError);  // down on the wrong side
  EXPECT_THROW(sel.up(0, 0, g), util::CheckError);    // off the top
  EXPECT_THROW(sel.down(3, 0, g), util::CheckError);  // off the bottom
}

TEST(Tridiag, ScalarTridiagonalKnownInverse) {
  // 1x1 blocks: T = tridiag(-1, 2, -1) of size 3 has inverse
  // [[0.75, 0.5, 0.25], [0.5, 1.0, 0.5], [0.25, 0.5, 0.75]].
  BlockTridiagonalMatrix t(1, 3);
  for (index_t i = 0; i < 3; ++i) t.d(i)(0, 0) = 2.0;
  for (index_t i = 1; i < 3; ++i) {
    t.a(i)(0, 0) = -1.0;
    t.c(i)(0, 0) = -1.0;
  }
  TridiagSelectedInverse sel(t);
  EXPECT_NEAR(sel.block(0, 0)(0, 0), 0.75, 1e-14);
  EXPECT_NEAR(sel.block(1, 1)(0, 0), 1.00, 1e-14);
  EXPECT_NEAR(sel.block(0, 2)(0, 0), 0.25, 1e-14);
  EXPECT_NEAR(sel.block(2, 0)(0, 0), 0.25, 1e-14);
}

TEST(Tridiag, InverseTimesMatrixIsIdentityViaColumns) {
  util::Rng rng(807);
  const index_t n = 5, l = 6;
  BlockTridiagonalMatrix t = BlockTridiagonalMatrix::random(n, l, rng);
  TridiagSelectedInverse sel(t);
  // Assemble the full inverse from columns and check T * G = I.
  Matrix g(n * l, n * l);
  for (index_t j = 0; j < l; ++j) {
    auto col = sel.column(j);
    for (index_t i = 0; i < l; ++i)
      dense::copy(col[static_cast<std::size_t>(i)],
                  g.block(i * n, j * n, n, n));
  }
  Matrix prod = dense::matmul(t.to_dense(), g);
  expect_close(prod, Matrix::identity(n * l), 1e-9, "T G = I");
}

}  // namespace
