/// Tests for the Hubbard-model substrate: HS field, B matrices, M assembly.

#include <gtest/gtest.h>

#include <cmath>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/qmc/hubbard.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::qmc;
using fsi::testing::expect_close;

HubbardModel make_model(index_t nx, index_t l, double u = 2.0, double beta = 1.0) {
  HubbardParams p;
  p.t = 1.0;
  p.u = u;
  p.beta = beta;
  p.l = l;
  return HubbardModel(Lattice::chain(nx), p);
}

TEST(HubbardParams, NuDefinition) {
  HubbardParams p;
  p.u = 2.0;
  p.beta = 1.0;
  p.l = 8;
  // cosh(nu) = e^{U dtau / 2}.
  EXPECT_NEAR(std::cosh(p.nu()), std::exp(p.u * p.dtau() / 2.0), 1e-14);
  EXPECT_NEAR(p.dtau(), 0.125, 1e-15);
}

TEST(HsField, InitialAndFlip) {
  HsField f(3, 4);
  EXPECT_EQ(f.at(0, 0), 1);
  f.flip(1, 2);
  EXPECT_EQ(f.at(1, 2), -1);
  f.flip(1, 2);
  EXPECT_EQ(f.at(1, 2), 1);
  f.set(2, 3, -1);
  EXPECT_EQ(f.at(2, 3), -1);
  EXPECT_THROW(f.set(0, 0, 2), util::CheckError);
}

TEST(HsField, RandomIsPlusMinusOne) {
  util::Rng rng(501);
  HsField f(10, 10, rng);
  int minus = 0;
  for (index_t l = 0; l < 10; ++l)
    for (index_t i = 0; i < 10; ++i) {
      EXPECT_TRUE(f.at(l, i) == 1 || f.at(l, i) == -1);
      if (f.at(l, i) == -1) ++minus;
    }
  EXPECT_GT(minus, 20);
  EXPECT_LT(minus, 80);
}

TEST(HsField, SerializeRoundTrips) {
  util::Rng rng(502);
  HsField f(5, 7, rng);
  auto buf = f.serialize();
  HsField g = HsField::deserialize(5, 7, buf.data(), buf.size());
  for (index_t l = 0; l < 5; ++l)
    for (index_t i = 0; i < 7; ++i) EXPECT_EQ(f.at(l, i), g.at(l, i));
  EXPECT_THROW(HsField::deserialize(5, 6, buf.data(), buf.size()),
               util::CheckError);
}

TEST(HubbardModel, ExpkTimesExpkInvIsIdentity) {
  HubbardModel model = make_model(6, 8);
  Matrix prod = dense::matmul(model.expk(), model.expk_inv());
  expect_close(prod, Matrix::identity(6), 1e-12, "expK expK^-1");
}

TEST(HubbardModel, BMatrixStructure) {
  HubbardModel model = make_model(4, 6);
  util::Rng rng(503);
  HsField h(6, 4, rng);
  // B = expK * diag(e^{sigma nu h}) entry-by-entry.
  for (Spin spin : {Spin::Up, Spin::Down}) {
    Matrix b = model.b_matrix(h, 2, spin);
    for (index_t j = 0; j < 4; ++j) {
      const double f = std::exp(sign_of(spin) * model.params().nu() * h.at(2, j));
      for (index_t i = 0; i < 4; ++i)
        EXPECT_NEAR(b(i, j), model.expk()(i, j) * f, 1e-13);
    }
  }
}

TEST(HubbardModel, BInverseIsAnalyticInverse) {
  HubbardModel model = make_model(5, 4);
  util::Rng rng(504);
  HsField h(4, 5, rng);
  Matrix b = model.b_matrix(h, 1, Spin::Down);
  Matrix binv = model.b_matrix_inv(h, 1, Spin::Down);
  expect_close(dense::matmul(b, binv), Matrix::identity(5), 1e-12, "B B^-1");
}

TEST(HubbardModel, BuildMMatchesBlockwiseConstruction) {
  HubbardModel model = make_model(3, 5);
  util::Rng rng(505);
  HsField h(5, 3, rng);
  pcyclic::PCyclicMatrix m = model.build_m(h, Spin::Up);
  ASSERT_EQ(m.num_blocks(), 5);
  ASSERT_EQ(m.block_size(), 3);
  for (index_t l = 0; l < 5; ++l)
    expect_close(Matrix::copy_of(m.b(l)), model.b_matrix(h, l, Spin::Up), 0.0,
                 "B block");
}

TEST(HubbardModel, MultiplyHelpersMatchExplicitProducts) {
  HubbardModel model = make_model(4, 3);
  util::Rng rng(506);
  HsField h(3, 4, rng);
  util::Rng rng2(507);
  Matrix g = fsi::testing::random_matrix(4, 4, rng2);

  Matrix expected = dense::matmul(model.b_matrix(h, 1, Spin::Up), g);
  Matrix actual = g;
  model.multiply_b_left(h, 1, Spin::Up, actual);
  expect_close(actual, expected, 1e-12, "B g");

  Matrix expected2 = dense::matmul(g, model.b_matrix_inv(h, 2, Spin::Down));
  Matrix actual2 = g;
  model.multiply_binv_right(h, 2, Spin::Down, actual2);
  expect_close(actual2, expected2, 1e-12, "g B^-1");
}

TEST(HubbardModel, UZeroMakesSpinsIdentical) {
  HubbardModel model = make_model(4, 4, /*u=*/0.0);
  util::Rng rng(508);
  HsField h(4, 4, rng);
  // nu = 0 at U = 0: the HS field decouples and B is spin-independent.
  EXPECT_NEAR(model.params().nu(), 0.0, 1e-14);
  Matrix bu = model.b_matrix(h, 0, Spin::Up);
  Matrix bd = model.b_matrix(h, 0, Spin::Down);
  expect_close(bu, bd, 0.0, "U=0 spin symmetry");
  expect_close(bu, model.expk(), 1e-14, "U=0 B = expK");
}

TEST(HubbardModel, InvalidParametersThrow) {
  HubbardParams p;
  p.l = 0;
  EXPECT_THROW(HubbardModel(Lattice::chain(2), p), util::CheckError);
  p.l = 4;
  p.beta = -1.0;
  EXPECT_THROW(HubbardModel(Lattice::chain(2), p), util::CheckError);
}

}  // namespace
