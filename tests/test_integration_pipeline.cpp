/// End-to-end integration tests across module boundaries: Hubbard model ->
/// FSI -> measurements, q-translation invariance, coarse-parallel equality,
/// and measured-flops-vs-model consistency.

#include <gtest/gtest.h>

#include "fsi/dense/norms.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"
#include "fsi/qmc/hubbard.hpp"
#include "fsi/selinv/fsi.hpp"
#include "fsi/util/flops.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using dense::index_t;
using dense::Matrix;
using fsi::testing::expect_close;

pcyclic::PCyclicMatrix hubbard(index_t n, index_t l, std::uint64_t seed) {
  qmc::HubbardParams p;
  p.u = 3.0;
  p.beta = 2.0;
  p.l = l;
  qmc::HubbardModel model(qmc::Lattice::chain(n), p);
  util::Rng rng(seed);
  qmc::HsField field(l, n, rng);
  return model.build_m(field, qmc::Spin::Up);
}

TEST(Pipeline, DifferentQAgreeOnSharedBlocks) {
  // Column selections for different q are different block sets, but any
  // block present in both must be numerically identical (both are blocks of
  // the same G).  Diagonal blocks of G computed through AllDiagonals are in
  // every selection — compare them across all q.
  const index_t n = 6, l = 12, c = 4;
  pcyclic::PCyclicMatrix m = hubbard(n, l, 21);
  util::Rng rng(1);

  std::vector<pcyclic::SelectedInversion> results;
  for (index_t q = 0; q < c; ++q) {
    selinv::FsiOptions opts;
    opts.c = c;
    opts.q = q;
    opts.pattern = pcyclic::Pattern::AllDiagonals;
    results.push_back(selinv::fsi(m, opts, rng));
  }
  for (index_t q = 1; q < c; ++q)
    for (index_t k = 0; k < l; ++k)
      expect_close(results[static_cast<std::size_t>(q)].at(k, k),
                   results[0].at(k, k), 1e-9, "q invariance of G(k,k)");
}

TEST(Pipeline, CoarseParallelOffGivesIdenticalBlocks) {
  const index_t n = 8, l = 12, c = 3;
  pcyclic::PCyclicMatrix m = hubbard(n, l, 22);
  util::Rng rng(2);
  for (auto pattern : {pcyclic::Pattern::Columns, pcyclic::Pattern::Rows,
                       pcyclic::Pattern::AllDiagonals}) {
    selinv::FsiOptions par;
    par.c = c;
    par.q = 1;
    par.pattern = pattern;
    par.coarse_parallel = true;
    selinv::FsiOptions ser = par;
    ser.coarse_parallel = false;
    auto sp = selinv::fsi(m, par, rng);
    auto ss = selinv::fsi(m, ser, rng);
    for (const auto& [k, col] : sp.keys())
      expect_close(sp.at(k, col), ss.at(k, col), 0.0,
                   "parallel/serial must be bitwise-identical per block");
  }
}

TEST(Pipeline, MeasuredFlopsTrackTheComplexityModel) {
  // The instrumented flop counts must agree with the paper's closed forms
  // to within their known constant-factor slack (< 2.5x, and never below
  // the leading term's 0.8x).
  const index_t n = 16, l = 32, c = 4;
  pcyclic::PCyclicMatrix m = hubbard(n, l, 23);
  pcyclic::BlockOps ops(m);
  util::Rng rng(3);
  selinv::ComplexityModel model{n, l, c};

  for (auto pattern : {pcyclic::Pattern::Diagonal, pcyclic::Pattern::Columns,
                       pcyclic::Pattern::Rows}) {
    selinv::FsiOptions opts;
    opts.c = c;
    opts.q = 0;
    opts.pattern = pattern;
    selinv::FsiStats stats;
    (void)selinv::fsi(m, ops, opts, rng, &stats);
    const double ratio =
        static_cast<double>(stats.flops_total()) / model.fsi_flops(pattern);
    EXPECT_GT(ratio, 0.8) << pcyclic::pattern_name(pattern);
    EXPECT_LT(ratio, 2.5) << pcyclic::pattern_name(pattern);
  }
}

TEST(Pipeline, SpinUpAndDownInversesAreDifferentButConsistent) {
  const index_t n = 5, l = 8;
  qmc::HubbardParams p;
  p.u = 4.0;
  p.l = l;
  qmc::HubbardModel model(qmc::Lattice::chain(n), p);
  util::Rng rng(24);
  qmc::HsField field(l, n, rng);

  auto mu = model.build_m(field, qmc::Spin::Up);
  auto md = model.build_m(field, qmc::Spin::Down);
  Matrix gu = pcyclic::full_inverse_dense(mu);
  Matrix gd = pcyclic::full_inverse_dense(md);
  // Different HS couplings -> different inverses...
  EXPECT_GT(dense::fro_distance(gu, gd), 1e-3);
  // ...but both are true inverses of their matrices.
  expect_close(dense::matmul(mu.to_dense(), gu), Matrix::identity(n * l),
               1e-9, "up");
  expect_close(dense::matmul(md.to_dense(), gd), Matrix::identity(n * l),
               1e-9, "down");
}

TEST(Pipeline, SelectedInversionIsIndependentOfBlockOpsSharing) {
  // Sharing one BlockOps across patterns (the DQMC fast path) must give the
  // same blocks as fresh construction per call.
  const index_t n = 6, l = 8, c = 2;
  pcyclic::PCyclicMatrix m = hubbard(n, l, 25);
  pcyclic::BlockOps shared(m);
  util::Rng rng(4);

  selinv::FsiOptions opts;
  opts.c = c;
  opts.q = 1;
  opts.pattern = pcyclic::Pattern::Columns;
  auto with_shared = selinv::fsi(m, shared, opts, rng);
  auto standalone = selinv::fsi(m, opts, rng);
  for (const auto& [k, col] : with_shared.keys())
    expect_close(with_shared.at(k, col), standalone.at(k, col), 0.0,
                 "BlockOps sharing");
}

TEST(Pipeline, FlopCounterIsolationAcrossRuns) {
  // FsiStats must reflect only its own run even when other work happened
  // in between (the counters are global but scoped per stage).
  const index_t n = 8, l = 8, c = 2;
  pcyclic::PCyclicMatrix m = hubbard(n, l, 26);
  util::Rng rng(5);
  selinv::FsiOptions opts;
  opts.c = c;
  opts.q = 0;
  opts.pattern = pcyclic::Pattern::Diagonal;

  selinv::FsiStats first, second;
  (void)selinv::fsi(m, opts, rng, &first);
  // Unrelated flop activity:
  Matrix a = Matrix::identity(64);
  dense::gemm(dense::Trans::No, dense::Trans::No, 1.0, a, a, 0.0, a);
  (void)selinv::fsi(m, opts, rng, &second);
  EXPECT_EQ(first.flops_cls, second.flops_cls);
  EXPECT_EQ(first.flops_bsofi, second.flops_bsofi);
}

}  // namespace
