/// Tests for the FSI algorithm: CLS structure preservation, the seed
/// identity (Eq. 8), wrapping for all four patterns, and the end-to-end
/// correctness validation of the paper's Sec. V-A (scaled down).

#include <gtest/gtest.h>

#include <tuple>

#include "fsi/dense/norms.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"
#include "fsi/selinv/fsi.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::selinv;
using dense::Matrix;
using fsi::testing::expect_close;
using pcyclic::PCyclicMatrix;
using pcyclic::Selection;

TEST(Cls, ClusterProductsMatchManualChains) {
  util::Rng rng(401);
  const index_t n = 4, l = 12, c = 3;
  PCyclicMatrix m = PCyclicMatrix::random(n, l, rng);
  for (index_t q = 0; q < c; ++q) {
    PCyclicMatrix reduced = cluster(m, c, q);
    ASSERT_EQ(reduced.num_blocks(), l / c);
    for (index_t i = 0; i < l / c; ++i) {
      // B~_i = B[j0] ... B[j0-c+1], j0 = c(i+1)-q-1.
      const index_t j0 = c * (i + 1) - q - 1;
      Matrix manual = Matrix::identity(n);
      for (index_t t = 0; t < c; ++t)
        manual = dense::matmul(Matrix::copy_of(m.b(m.wrap(j0 - c + 1 + t))), manual);
      expect_close(Matrix::copy_of(reduced.b(i)), manual, 1e-13, "cluster");
    }
  }
}

TEST(Cls, SeedIdentityEq8) {
  // G~_{k0,l0} = G_{c k0 - q, c l0 - q} (paper Eq. 8; 0-based shift).
  util::Rng rng(402);
  const index_t n = 3, l = 12, c = 4, q = 2;
  PCyclicMatrix m = PCyclicMatrix::random(n, l, rng);
  Matrix g_full = pcyclic::full_inverse_dense(m);

  PCyclicMatrix reduced = cluster(m, c, q);
  Matrix g_tilde = bsofi::invert(reduced);

  Selection sel(l, c, q);
  const auto idx = sel.indices();
  const index_t b = sel.b();
  for (index_t k0 = 0; k0 < b; ++k0)
    for (index_t l0 = 0; l0 < b; ++l0) {
      Matrix seed = Matrix::copy_of(g_tilde.block(k0 * n, l0 * n, n, n));
      Matrix truth = pcyclic::dense_block(g_full, n, idx[k0], idx[l0]);
      expect_close(seed, truth, 1e-9, "seed identity");
    }
}

TEST(Cls, InvalidParametersThrow) {
  util::Rng rng(403);
  PCyclicMatrix m = PCyclicMatrix::random(2, 10, rng);
  EXPECT_THROW(cluster(m, 3, 0), util::CheckError);   // 3 does not divide 10
  EXPECT_THROW(cluster(m, 5, 5), util::CheckError);   // q out of range
}

TEST(Cls, CEqualsOneIsIdentityReduction) {
  util::Rng rng(404);
  PCyclicMatrix m = PCyclicMatrix::random(3, 5, rng);
  PCyclicMatrix r = cluster(m, 1, 0);
  ASSERT_EQ(r.num_blocks(), 5);
  for (index_t i = 0; i < 5; ++i)
    expect_close(Matrix::copy_of(r.b(i)), Matrix::copy_of(m.b(i)), 0.0, "c=1");
}

TEST(Cls, CEqualsLReducesToSingleBlock) {
  util::Rng rng(405);
  const index_t n = 3, l = 6;
  PCyclicMatrix m = PCyclicMatrix::random(n, l, rng);
  PCyclicMatrix r = cluster(m, l, 0);
  ASSERT_EQ(r.num_blocks(), 1);
  // Single cluster = full chain B_{L-1}...B_0; (I + chain)^-1 must match
  // the (L-1, L-1)... actually the single-block reduced matrix must invert
  // to the G block at the selected index L-1.
  Matrix g_tilde = bsofi::invert(r);
  Matrix g_full = pcyclic::full_inverse_dense(m);
  expect_close(g_tilde, pcyclic::dense_block(g_full, n, l - 1, l - 1), 1e-9,
               "c=L seed");
}

// ---------------------------------------------------------------------------

using FsiParam = std::tuple<index_t /*N*/, index_t /*L*/, index_t /*c*/,
                            index_t /*q*/, pcyclic::Pattern>;

class FsiAllPatterns : public ::testing::TestWithParam<FsiParam> {};

TEST_P(FsiAllPatterns, MatchesDenseInverseOnEverySelectedBlock) {
  const auto [n, l, c, q, pattern] = GetParam();
  util::Rng rng(406, static_cast<std::uint64_t>(n * 1000 + l * 10 + c));
  PCyclicMatrix m = PCyclicMatrix::random(n, l, rng);
  Matrix g_full = pcyclic::full_inverse_dense(m);

  FsiOptions opts;
  opts.c = c;
  opts.q = q;
  opts.pattern = pattern;
  FsiStats stats;
  auto s = selinv::fsi(m, opts, rng, &stats);

  EXPECT_EQ(stats.q, q);
  EXPECT_GT(s.size(), 0);
  for (const auto& [k, col] : s.keys()) {
    expect_close(s.at(k, col), pcyclic::dense_block(g_full, n, k, col), 1e-8,
                 ("FSI block (" + std::to_string(k) + "," +
                  std::to_string(col) + ")").c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FsiAllPatterns,
    ::testing::Combine(::testing::Values(index_t{3}, index_t{9}),
                       ::testing::Values(index_t{8}, index_t{12}),
                       ::testing::Values(index_t{2}, index_t{4}),
                       ::testing::Values(index_t{0}, index_t{1}),
                       ::testing::Values(pcyclic::Pattern::Diagonal,
                                         pcyclic::Pattern::SubDiagonal,
                                         pcyclic::Pattern::Columns,
                                         pcyclic::Pattern::Rows,
                                         pcyclic::Pattern::AllDiagonals)),
    [](const auto& info) {
      const auto& t = info.param;
      const std::string pname(pcyclic::pattern_name(std::get<4>(t)));
      return "N" + std::to_string(std::get<0>(t)) + "L" +
             std::to_string(std::get<1>(t)) + "c" +
             std::to_string(std::get<2>(t)) + "q" +
             std::to_string(std::get<3>(t)) + pname.substr(0, 2);
    });

TEST(Fsi, RandomQIsDrawnFromRng) {
  util::Rng rng(407);
  PCyclicMatrix m = PCyclicMatrix::random(2, 12, rng);
  FsiOptions opts;
  opts.c = 4;
  opts.q = -1;
  opts.pattern = pcyclic::Pattern::Diagonal;
  bool saw_different = false;
  index_t first_q = -1;
  for (int rep = 0; rep < 16; ++rep) {
    FsiStats stats;
    auto s = selinv::fsi(m, opts, rng, &stats);
    EXPECT_GE(stats.q, 0);
    EXPECT_LT(stats.q, 4);
    if (first_q < 0) first_q = stats.q;
    if (stats.q != first_q) saw_different = true;
  }
  EXPECT_TRUE(saw_different) << "q should be randomised across calls";
}

TEST(Fsi, StatsAccountAllStages) {
  util::Rng rng(408);
  PCyclicMatrix m = PCyclicMatrix::random(16, 12, rng);
  FsiOptions opts;
  opts.c = 4;
  opts.q = 1;
  opts.pattern = pcyclic::Pattern::Columns;
  FsiStats stats;
  auto s = selinv::fsi(m, opts, rng, &stats);
  EXPECT_GT(stats.flops_cls, 0u);
  EXPECT_GT(stats.flops_bsofi, 0u);
  EXPECT_GT(stats.flops_wrap, 0u);
  EXPECT_EQ(stats.flops_total(),
            stats.flops_cls + stats.flops_bsofi + stats.flops_wrap);
  EXPECT_GE(stats.seconds_total(), 0.0);
}

TEST(Fsi, ReusedBlockOpsGiveSameResult) {
  util::Rng rng(409);
  PCyclicMatrix m = PCyclicMatrix::random(4, 8, rng);
  pcyclic::BlockOps ops(m);
  FsiOptions opts;
  opts.c = 2;
  opts.q = 1;
  opts.pattern = pcyclic::Pattern::Columns;
  auto s1 = selinv::fsi(m, ops, opts, rng);
  auto s2 = selinv::fsi(m, opts, rng);
  for (const auto& [k, col] : s1.keys())
    expect_close(s1.at(k, col), s2.at(k, col), 0.0, "BlockOps reuse");
}

TEST(Fsi, MismatchedBlockOpsThrow) {
  util::Rng rng(410);
  PCyclicMatrix m1 = PCyclicMatrix::random(3, 4, rng);
  PCyclicMatrix m2 = PCyclicMatrix::random(3, 4, rng);
  pcyclic::BlockOps ops(m2);
  FsiOptions opts;
  opts.c = 2;
  opts.q = 0;
  EXPECT_THROW(selinv::fsi(m1, ops, opts, rng), util::CheckError);
}

TEST(ComplexityModel, MatchesPaperTable) {
  // (N, L, c) = (1, 100, 10): b = 10.
  ComplexityModel cm{1, 100, 10};
  EXPECT_DOUBLE_EQ(cm.fsi_flops(pcyclic::Pattern::Diagonal),
                   (2.0 * 9 + 7.0 * 10) * 10);           // [2(c-1)+7b] b N^3
  EXPECT_DOUBLE_EQ(cm.fsi_flops(pcyclic::Pattern::Columns), 3.0 * 100 * 10);
  EXPECT_DOUBLE_EQ(cm.explicit_flops(pcyclic::Pattern::Columns),
                   1000.0 * 100);                        // b^3 c^2 N^3
  // FSI speedup for b columns is ~ bc/3 (paper Sec. II-C).
  EXPECT_NEAR(cm.explicit_flops(pcyclic::Pattern::Columns) /
                  cm.fsi_flops(pcyclic::Pattern::Columns),
              10.0 * 10 / 3.0, 1e-12);
}

}  // namespace
