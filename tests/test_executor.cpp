// Tests of the dependency-aware task-graph executor: TaskGraph validation,
// GraphRunner ordering / stealing / cancellation semantics, and the
// persistent Executor pool (concurrent rank dispatch, pool reuse, nested
// dispatch).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "fsi/sched/executor.hpp"
#include "fsi/sched/task_graph.hpp"
#include "fsi/util/check.hpp"

namespace {

using namespace fsi;

sched::ExecOptions quiet_options(bool stealing = true) {
  sched::ExecOptions o;          // explicit, not from_env(): tests must not
  o.work_stealing = stealing;    // depend on the ambient FSI_SCHED value
  o.backoff_us = 0;
  return o;
}

// ---------------------------------------------------------------------------
// TaskGraph

TEST(TaskGraph, ValidateAcceptsDag) {
  sched::TaskGraph g;
  const auto a = g.add_node([](int) {});
  const auto b = g.add_node([](int) {});
  const auto c = g.add_node([](int) {});
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, c);
  EXPECT_NO_THROW(g.validate());
}

TEST(TaskGraph, ValidateDetectsCycle) {
  sched::TaskGraph g;
  const auto a = g.add_node([](int) {});
  const auto b = g.add_node([](int) {});
  const auto c = g.add_node([](int) {});
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);
  EXPECT_THROW(g.validate(), util::CheckError);
}

TEST(TaskGraph, RejectsSelfEdgeAndBadIds) {
  sched::TaskGraph g;
  const auto a = g.add_node([](int) {});
  EXPECT_THROW(g.add_edge(a, a), util::CheckError);
  EXPECT_THROW(g.add_edge(a, 7), util::CheckError);
  EXPECT_THROW(g.add_node(nullptr), util::CheckError);
}

TEST(TaskGraph, ExecutorRejectsCyclicGraphInsteadOfDeadlocking) {
  sched::TaskGraph g;
  const auto a = g.add_node([](int) {});
  const auto b = g.add_node([](int) {});
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW(
      sched::Executor::instance().run_graph(g, 2, quiet_options()),
      util::CheckError);
}

// ---------------------------------------------------------------------------
// GraphRunner

TEST(GraphRunner, EmptyGraphCompletesImmediately) {
  sched::TaskGraph g;
  const sched::GraphStats gs =
      sched::Executor::instance().run_graph(g, 4, quiet_options());
  EXPECT_EQ(gs.nodes, 0u);
}

TEST(GraphRunner, EveryNodeRunsExactlyOnce) {
  constexpr int kNodes = 64;
  sched::TaskGraph g;
  std::vector<std::atomic<int>> runs(kNodes);
  for (auto& r : runs) r.store(0);
  for (int i = 0; i < kNodes; ++i)
    g.add_node([&runs, i](int) { runs[static_cast<std::size_t>(i)]++; },
               sched::Stage::Other, i % 3);
  const sched::GraphStats gs =
      sched::Executor::instance().run_graph(g, 3, quiet_options());
  EXPECT_EQ(gs.nodes, static_cast<std::uint64_t>(kNodes));
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(GraphRunner, DependenciesOrderExecution) {
  // Diamond per lane: root -> {mid1, mid2} -> sink.  Every body asserts its
  // predecessors already retired.
  constexpr int kLanes = 8;
  sched::TaskGraph g;
  std::vector<std::atomic<int>> done(static_cast<std::size_t>(kLanes) * 4);
  for (auto& d : done) d.store(0);
  std::atomic<bool> ordered{true};
  for (int lane = 0; lane < kLanes; ++lane) {
    const std::size_t base = static_cast<std::size_t>(lane) * 4;
    const auto root = g.add_node([&done, base](int) { done[base] = 1; },
                                 sched::Stage::Build, lane);
    const auto mid1 = g.add_node(
        [&done, &ordered, base](int) {
          if (done[base].load() != 1) ordered = false;
          done[base + 1] = 1;
        },
        sched::Stage::Cls, lane);
    const auto mid2 = g.add_node(
        [&done, &ordered, base](int) {
          if (done[base].load() != 1) ordered = false;
          done[base + 2] = 1;
        },
        sched::Stage::Cls, lane);
    const auto sink = g.add_node(
        [&done, &ordered, base](int) {
          if (done[base + 1].load() != 1 || done[base + 2].load() != 1)
            ordered = false;
          done[base + 3] = 1;
        },
        sched::Stage::Wrap, lane);
    g.add_edge(root, mid1);
    g.add_edge(root, mid2);
    g.add_edge(mid1, sink);
    g.add_edge(mid2, sink);
  }
  const sched::GraphStats gs =
      sched::Executor::instance().run_graph(g, 4, quiet_options());
  EXPECT_TRUE(ordered.load());
  EXPECT_EQ(gs.nodes, static_cast<std::uint64_t>(kLanes) * 4);
  EXPECT_EQ(gs.of(sched::Stage::Build).nodes, static_cast<std::uint64_t>(kLanes));
  EXPECT_EQ(gs.of(sched::Stage::Cls).nodes,
            static_cast<std::uint64_t>(kLanes) * 2);
  EXPECT_EQ(gs.of(sched::Stage::Wrap).nodes, static_cast<std::uint64_t>(kLanes));
  for (const auto& d : done) EXPECT_EQ(d.load(), 1);
}

TEST(GraphRunner, MoreWorkersThanNodes) {
  sched::TaskGraph g;
  std::atomic<int> runs{0};
  g.add_node([&runs](int) { runs++; });
  g.add_node([&runs](int) { runs++; });
  const sched::GraphStats gs =
      sched::Executor::instance().run_graph(g, 8, quiet_options());
  EXPECT_EQ(runs.load(), 2);
  EXPECT_EQ(gs.nodes, 2u);
}

TEST(GraphRunner, ThrowingBodyCancelsRunWithoutDeadlock) {
  sched::TaskGraph g;
  std::atomic<int> downstream_ran{0};
  const auto bad = g.add_node(
      [](int) { throw std::runtime_error("node failure"); });
  for (int i = 0; i < 8; ++i) {
    const auto succ =
        g.add_node([&downstream_ran](int) { downstream_ran++; });
    g.add_edge(bad, succ);
  }
  EXPECT_THROW(sched::Executor::instance().run_graph(g, 2, quiet_options()),
               std::runtime_error);
  // Cancel-and-drain: the failing node's successors were retired, not run.
  EXPECT_EQ(downstream_ran.load(), 0);
}

TEST(GraphRunner, StealingDisabledPinsNodesToOwner) {
  constexpr int kWorkers = 2, kNodes = 12;
  sched::TaskGraph g;
  std::vector<std::atomic<int>> ran_by(kNodes);
  for (auto& r : ran_by) r.store(-1);
  for (int i = 0; i < kNodes; ++i)
    g.add_node([&ran_by, i](int worker) {
      ran_by[static_cast<std::size_t>(i)] = worker;
    }, sched::Stage::Other, i % kWorkers);
  sched::GraphRunner runner(g, kWorkers, quiet_options(/*stealing=*/false));
  std::vector<std::thread> team;
  for (int w = 0; w < kWorkers; ++w)
    team.emplace_back([&runner, w] { runner.run_worker(w); });
  for (auto& t : team) t.join();
  for (int i = 0; i < kNodes; ++i)
    EXPECT_EQ(ran_by[static_cast<std::size_t>(i)].load(), i % kWorkers)
        << "node " << i << " migrated with stealing disabled";
  EXPECT_EQ(runner.stats().stolen_nodes, 0u);
}

TEST(GraphRunner, IdleWorkerStealsFromStraggler) {
  // All nodes preloaded on worker 0; its first node blocks until worker 1
  // has run something — which, with an empty own deque, worker 1 can only
  // have obtained by stealing.
  constexpr int kNodes = 16;
  sched::TaskGraph g;
  std::atomic<int> ran_by_1{0};
  g.add_node([&ran_by_1](int) {
    while (ran_by_1.load() == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }, sched::Stage::Other, 0);
  for (int i = 1; i < kNodes; ++i)
    g.add_node([&ran_by_1](int worker) {
      if (worker == 1) ran_by_1++;
    }, sched::Stage::Other, 0);
  sched::GraphRunner runner(g, 2, quiet_options());
  std::thread helper([&runner] { runner.run_worker(1); });
  runner.run_worker(0);
  helper.join();
  const sched::GraphStats gs = runner.stats();
  EXPECT_GT(ran_by_1.load(), 0);
  EXPECT_GT(gs.steal_batches, 0u);
  EXPECT_GT(gs.stolen_nodes, 0u);
  EXPECT_EQ(gs.nodes, static_cast<std::uint64_t>(kNodes));
}

// ---------------------------------------------------------------------------
// Executor (persistent pool)

TEST(Executor, RunRanksExecutesBodiesConcurrently) {
  // Rank bodies rendezvous: each arrives and waits for all others, which
  // terminates only if all n bodies run at the same time (mini-MPI barrier
  // semantics — queued-not-concurrent would deadlock here).
  constexpr int kRanks = 4;
  std::atomic<int> arrived{0};
  sched::Executor::instance().run_ranks(kRanks, [&arrived](int) {
    arrived++;
    while (arrived.load() < kRanks)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  EXPECT_EQ(arrived.load(), kRanks);
}

TEST(Executor, PoolPersistsAcrossBatches) {
  sched::Executor& ex = sched::Executor::instance();
  std::atomic<int> runs{0};
  ex.run_ranks(3, [&runs](int) { runs++; });
  const int size_after_first = ex.pool_size();
  const std::uint64_t dispatches_before = ex.dispatch_count();
  for (int batch = 0; batch < 5; ++batch)
    ex.run_ranks(3, [&runs](int) { runs++; });
  EXPECT_EQ(runs.load(), 3 + 5 * 3);
  // Same-width batches reuse the existing workers instead of spawning.
  EXPECT_EQ(ex.pool_size(), size_after_first);
  EXPECT_EQ(ex.dispatch_count(), dispatches_before + 5);
}

TEST(Executor, RunRanksPropagatesBodyException) {
  std::atomic<int> survivors{0};
  EXPECT_THROW(
      sched::Executor::instance().run_ranks(3, [&survivors](int rank) {
        if (rank == 1) throw std::runtime_error("rank failure");
        survivors++;
      }),
      std::runtime_error);
  // The other ranks still ran to completion; the pool is not poisoned.
  EXPECT_EQ(survivors.load(), 2);
  std::atomic<int> again{0};
  sched::Executor::instance().run_ranks(2, [&again](int) { again++; });
  EXPECT_EQ(again.load(), 2);
}

TEST(Executor, NestedGraphInsideRankBatchDoesNotDeadlock) {
  // A graph dispatched from inside a rank body (exactly what multi_gf does
  // under a DQMC driver) must grow the pool instead of waiting for the busy
  // rank workers.
  constexpr int kRanks = 2, kNodesPerRank = 6;
  std::atomic<int> total{0};
  sched::Executor::instance().run_ranks(kRanks, [&total](int) {
    sched::TaskGraph g;
    for (int i = 0; i < kNodesPerRank; ++i)
      g.add_node([&total](int) { total++; });
    sched::Executor::instance().run_graph(g, 2, quiet_options());
  });
  EXPECT_EQ(total.load(), kRanks * kNodesPerRank);
}

TEST(Executor, GraphStatsReportBusyAndReadyTelemetry) {
  sched::TaskGraph g;
  for (int i = 0; i < 8; ++i)
    g.add_node([](int) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }, sched::Stage::Cls);
  const sched::GraphStats gs =
      sched::Executor::instance().run_graph(g, 2, quiet_options());
  EXPECT_EQ(gs.nodes, 8u);
  EXPECT_GT(gs.busy_max_seconds, 0.0);
  EXPECT_GT(gs.busy_mean_seconds, 0.0);
  EXPECT_GE(gs.busy_max_seconds, gs.busy_mean_seconds);
  EXPECT_EQ(gs.busy_seconds.size(), 2u);
  EXPECT_GT(gs.critical_path_seconds, 0.0);
  // Serial chain bound: critical path cannot exceed the summed busy time.
  EXPECT_LE(gs.critical_path_seconds,
            gs.busy_mean_seconds * 2 + 1e-9);
  EXPECT_GT(gs.of(sched::Stage::Cls).busy_seconds, 0.0);
  EXPECT_EQ(gs.of(sched::Stage::Cls).nodes, 8u);
}

}  // namespace
