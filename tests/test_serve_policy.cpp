// Adaptive batching policy, per-client quota accounting, BatchKey sharding
// and the stats-v3 wire block.
//
// The policy tests drive AdaptivePolicy with synthetic BatchObservation
// traces — no server, no clocks — so the state machine's transitions are
// asserted deterministically: convergence under bursty load, bypass
// engagement under uniform sparse load, and the no-flap hysteresis bound
// under an adversarial alternating trace.

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <vector>

#include "fsi/serve/policy.hpp"
#include "fsi/serve/protocol.hpp"
#include "fsi/serve/queue.hpp"
#include "fsi/serve/shard.hpp"
#include "fsi/util/check.hpp"

namespace {

using namespace fsi;
using namespace fsi::serve;

AdaptiveConfig test_config() {
  AdaptiveConfig c;
  c.enabled = true;
  c.window_ceiling_us = 2000;
  c.window_floor_us = 50;
  c.max_batch_ceiling = 8;
  c.bypass_after = 4;
  c.resume_after = 3;
  return c;
}

BatchKey key_a() { return BatchKey{4, 1, 8, 2, 1.0, 2.0, 1.0}; }

/// A losing window: one request dispatched alone after paying 2 ms of
/// straggler wait on a 1 ms solo execution.
BatchObservation losing() {
  BatchObservation o;
  o.batch_size = 1;
  o.queue_depth_after = 0;
  o.window_wait_ns = 2'000'000;
  o.exec_ns = 1'000'000;
  return o;
}

/// A winning batch: four requests amortised one engine run.
BatchObservation winning() {
  BatchObservation o;
  o.batch_size = 4;
  o.queue_depth_after = 1;
  o.window_wait_ns = 100'000;
  o.exec_ns = 1'200'000;
  return o;
}

/// A neutral dispatch: alone, but the window was never charged (the batch
/// filled / arrived into an empty window).
BatchObservation neutral() {
  BatchObservation o;
  o.batch_size = 1;
  o.queue_depth_after = 0;
  o.window_wait_ns = 0;
  o.exec_ns = 1'000'000;
  return o;
}

/// A bypass-mode dispatch that left same-key work queued behind it.
BatchObservation backlogged() {
  BatchObservation o;
  o.batch_size = 1;
  o.queue_depth_after = 3;
  o.window_wait_ns = 0;
  o.exec_ns = 1'000'000;
  return o;
}

// ---------------------------------------------------------------------------
// Policy state machine

TEST(ServePolicy, UnseenKeyPlansAtCeilings) {
  AdaptivePolicy p(test_config());
  const BatchPlan plan = p.plan(key_a());
  EXPECT_EQ(plan.window.count(), 2000);
  EXPECT_EQ(plan.max_batch, 8u);
}

TEST(ServePolicy, DisabledPolicyAlwaysPlansCeilings) {
  AdaptiveConfig c = test_config();
  c.enabled = false;
  AdaptivePolicy p(c);
  for (int i = 0; i < 10; ++i) p.observe(key_a(), losing());
  const BatchPlan plan = p.plan(key_a());
  EXPECT_EQ(plan.window.count(), 2000);
  EXPECT_EQ(plan.max_batch, 8u);
  EXPECT_EQ(p.bypass_enters(), 0u);
}

TEST(ServePolicy, BurstyTraceStaysAtCeilings) {
  AdaptivePolicy p(test_config());
  for (int i = 0; i < 20; ++i) p.observe(key_a(), winning());
  const KeyPolicy s = p.state(key_a());
  EXPECT_FALSE(s.bypass);
  EXPECT_EQ(s.window_us, 2000);
  EXPECT_EQ(s.max_batch, 8u);
  EXPECT_GT(s.ema_occupancy, 3.0);
  EXPECT_EQ(p.bypass_enters(), 0u);
}

TEST(ServePolicy, LosingWindowsHalveThenBypass) {
  AdaptivePolicy p(test_config());
  p.observe(key_a(), losing());
  EXPECT_EQ(p.state(key_a()).window_us, 1000);
  p.observe(key_a(), losing());
  EXPECT_EQ(p.state(key_a()).window_us, 500);
  p.observe(key_a(), losing());
  EXPECT_EQ(p.state(key_a()).window_us, 250);
  EXPECT_FALSE(p.state(key_a()).bypass);
  p.observe(key_a(), losing());  // 4th consecutive loss: bypass engages
  const KeyPolicy s = p.state(key_a());
  EXPECT_TRUE(s.bypass);
  EXPECT_EQ(p.bypass_enters(), 1u);
  const BatchPlan plan = p.plan(key_a());
  EXPECT_EQ(plan.window.count(), 0);
  EXPECT_EQ(plan.max_batch, 1u);
}

TEST(ServePolicy, MeasuredSpeedupBelowOneInLosingTrace) {
  AdaptivePolicy p(test_config());
  // Seed the solo baseline (neutral size-1 dispatches), then lose.
  for (int i = 0; i < 5; ++i) p.observe(key_a(), neutral());
  for (int i = 0; i < 3; ++i) p.observe(key_a(), losing());
  const KeyPolicy s = p.state(key_a());
  EXPECT_GT(s.speedup, 0.0);
  EXPECT_LT(s.speedup, 1.0);
}

TEST(ServePolicy, MeasuredSpeedupAboveOneInWinningTrace) {
  AdaptivePolicy p(test_config());
  for (int i = 0; i < 5; ++i) p.observe(key_a(), neutral());
  for (int i = 0; i < 10; ++i) p.observe(key_a(), winning());
  EXPECT_GT(p.state(key_a()).speedup, 1.0);
}

TEST(ServePolicy, NeutralDispatchBreaksLoseStreak) {
  AdaptivePolicy p(test_config());
  for (int i = 0; i < 3; ++i) p.observe(key_a(), losing());
  p.observe(key_a(), neutral());  // streak resets
  for (int i = 0; i < 3; ++i) p.observe(key_a(), losing());
  EXPECT_EQ(p.bypass_enters(), 0u);
  EXPECT_FALSE(p.state(key_a()).bypass);
  p.observe(key_a(), losing());  // now 4 consecutive
  EXPECT_EQ(p.bypass_enters(), 1u);
}

TEST(ServePolicy, AdversarialAlternationNeverFlaps) {
  // Alternating win/lose can never build a 4-streak: zero transitions.
  AdaptivePolicy p(test_config());
  for (int i = 0; i < 200; ++i)
    p.observe(key_a(), i % 2 == 0 ? losing() : winning());
  EXPECT_EQ(p.bypass_enters(), 0u);
  EXPECT_EQ(p.bypass_exits(), 0u);
  EXPECT_FALSE(p.state(key_a()).bypass);
}

TEST(ServePolicy, BypassExitsOnSustainedBacklogWithSlowStart) {
  AdaptivePolicy p(test_config());
  for (int i = 0; i < 4; ++i) p.observe(key_a(), losing());
  ASSERT_TRUE(p.state(key_a()).bypass);

  // Alternating backlog / idle never reaches resume_after = 3.
  for (int i = 0; i < 20; ++i)
    p.observe(key_a(), i % 2 == 0 ? backlogged() : neutral());
  EXPECT_TRUE(p.state(key_a()).bypass);

  // Three consecutive backlogged dispatches exit bypass.
  for (int i = 0; i < 3; ++i) p.observe(key_a(), backlogged());
  const KeyPolicy s = p.state(key_a());
  EXPECT_FALSE(s.bypass);
  EXPECT_EQ(s.window_us, 50);   // slow start at the floor
  EXPECT_EQ(s.max_batch, 8u);   // full coalescing capacity for the backlog
  EXPECT_EQ(p.bypass_exits(), 1u);
}

TEST(ServePolicy, WindowRecoversByDoublingAfterExit) {
  AdaptivePolicy p(test_config());
  for (int i = 0; i < 4; ++i) p.observe(key_a(), losing());
  for (int i = 0; i < 3; ++i) p.observe(key_a(), backlogged());
  ASSERT_EQ(p.state(key_a()).window_us, 50);
  p.observe(key_a(), winning());
  EXPECT_EQ(p.state(key_a()).window_us, 100);
  for (int i = 0; i < 10; ++i) p.observe(key_a(), winning());
  EXPECT_EQ(p.state(key_a()).window_us, 2000);  // clamped at the ceiling
}

TEST(ServePolicy, PerKeyStateIsIndependent) {
  AdaptivePolicy p(test_config());
  BatchKey b = key_a();
  b.beta = 4.0;
  for (int i = 0; i < 4; ++i) p.observe(key_a(), losing());
  EXPECT_TRUE(p.state(key_a()).bypass);
  EXPECT_FALSE(p.state(b).bypass);
  EXPECT_EQ(p.plan(b).window.count(), 2000);
}

TEST(ServePolicy, KeyTableIsLruBounded) {
  AdaptiveConfig c = test_config();
  c.max_keys = 4;
  AdaptivePolicy p(c);
  for (int i = 0; i < 6; ++i) {
    BatchKey k = key_a();
    k.beta = 1.0 + i;
    p.observe(k, winning());
  }
  EXPECT_EQ(p.keys(), 4u);
  // The oldest key fell out: it plans fresh (at ceilings), not from state.
  BatchKey oldest = key_a();
  oldest.beta = 1.0;
  EXPECT_EQ(p.state(oldest).batches, 0u);
}

TEST(ServePolicy, ActiveStateTracksLastObservedKey) {
  AdaptivePolicy p(test_config());
  BatchKey b = key_a();
  b.beta = 4.0;
  for (int i = 0; i < 4; ++i) p.observe(key_a(), losing());
  p.observe(b, winning());
  EXPECT_FALSE(p.active_state().bypass);  // b, not the bypassed key_a
  p.observe(key_a(), neutral());
  EXPECT_TRUE(p.active_state().bypass);
}

// ---------------------------------------------------------------------------
// AdmissionQueue per-client quota

PendingRequest quota_request(std::uint64_t id, std::uint64_t client) {
  PendingRequest p;
  p.request.id = id;
  p.client_id = client;
  return p;
}

TEST(ServeQuota, OverQuotaClientIsRejectedOthersAdmitted) {
  AdmissionQueue q(8, 2);
  EXPECT_EQ(q.admit(quota_request(1, 1)), Admit::Ok);
  EXPECT_EQ(q.admit(quota_request(2, 1)), Admit::Ok);
  EXPECT_EQ(q.admit(quota_request(3, 1)), Admit::OverQuota);
  EXPECT_EQ(q.client_depth(1), 2u);
  // A different client still gets in: the quota is the fairness mechanism.
  EXPECT_EQ(q.admit(quota_request(4, 2)), Admit::Ok);
  EXPECT_EQ(q.depth(), 3u);
}

TEST(ServeQuota, UnattributedRequestsAreNeverQuotaLimited) {
  AdmissionQueue q(8, 1);
  for (std::uint64_t i = 0; i < 5; ++i)
    EXPECT_EQ(q.admit(quota_request(i, 0)), Admit::Ok);
}

TEST(ServeQuota, SlotsReleaseWhenBatchPops) {
  AdmissionQueue q(8, 2);
  ASSERT_EQ(q.admit(quota_request(1, 7)), Admit::Ok);
  ASSERT_EQ(q.admit(quota_request(2, 7)), Admit::Ok);
  ASSERT_EQ(q.admit(quota_request(3, 7)), Admit::OverQuota);
  const auto batch = q.next_batch(std::chrono::microseconds(0), 8);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(q.client_depth(7), 0u);
  EXPECT_EQ(q.admit(quota_request(4, 7)), Admit::Ok);
}

TEST(ServeQuota, FullQueueReportsFullNotQuota) {
  AdmissionQueue q(2, 8);
  EXPECT_EQ(q.admit(quota_request(1, 1)), Admit::Ok);
  EXPECT_EQ(q.admit(quota_request(2, 1)), Admit::Ok);
  EXPECT_EQ(q.admit(quota_request(3, 1)), Admit::Full);
}

TEST(ServeQuota, DrainClearsQuotaAccounting) {
  AdmissionQueue q(8, 1);
  ASSERT_EQ(q.admit(quota_request(1, 5)), Admit::Ok);
  ASSERT_EQ(q.admit(quota_request(2, 5)), Admit::OverQuota);
  const auto drained = q.drain();
  EXPECT_EQ(drained.size(), 1u);
  EXPECT_EQ(q.client_depth(5), 0u);
}

TEST(ServeQuota, PlannerReceivesTheOldestKeyAndItsPlanApplies) {
  AdmissionQueue q(8, 0);
  for (std::uint64_t i = 0; i < 3; ++i)
    ASSERT_EQ(q.admit(quota_request(i, 0)), Admit::Ok);
  BatchKey seen{};
  const auto batch = q.next_batch([&](const BatchKey& k) {
    seen = k;
    return BatchPlan{std::chrono::microseconds(0), 1};
  });
  EXPECT_EQ(batch.size(), 1u);  // the plan's max_batch bound held
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(seen, quota_request(0, 0).key());
}

// ---------------------------------------------------------------------------
// BatchKey sharding

TEST(ServeShard, HashIsDeterministicAndKeySensitive) {
  const BatchKey a = key_a();
  BatchKey b = key_a();
  EXPECT_EQ(batch_key_hash(a), batch_key_hash(b));
  b.beta = 1.0000001;
  EXPECT_NE(batch_key_hash(a), batch_key_hash(b));
}

TEST(ServeShard, SingleReplicaAlwaysShardZero) {
  EXPECT_EQ(shard_for(key_a(), 0), 0u);
  EXPECT_EQ(shard_for(key_a(), 1), 0u);
}

TEST(ServeShard, KeysSpreadAcrossReplicas) {
  std::set<std::size_t> hit;
  for (int i = 0; i < 64; ++i) {
    BatchKey k = key_a();
    k.beta = 0.25 * (i + 1);
    hit.insert(shard_for(k, 4));
  }
  EXPECT_EQ(hit.size(), 4u);  // 64 keys certainly touch all 4 shards
  for (const std::size_t s : hit) EXPECT_LT(s, 4u);
}

TEST(ServeShard, RendezvousMinimalDisruptionOnShrink) {
  // Removing the last replica only remaps keys that lived on it: every key
  // whose winner among 3 replicas is 0 or 1 keeps that winner among 2.
  for (int i = 0; i < 256; ++i) {
    BatchKey k = key_a();
    k.u = 0.125 * i;
    const std::size_t with3 = shard_for(k, 3);
    if (with3 < 2) {
      EXPECT_EQ(shard_for(k, 2), with3);
    }
  }
}

// ---------------------------------------------------------------------------
// Stats v3 wire block

TEST(ServeStatsV3, RoundTripsPolicyBlock) {
  StatsResponse s;
  s.id = 99;
  s.stats_version = kStatsVersion;
  s.admitted = 10;
  s.rejected_quota = 3;
  s.replicas = 2;
  s.adaptive_enabled = true;
  s.policy_keys = 5;
  s.policy_window_us = 125;
  s.policy_max_batch = 4;
  s.policy_bypass = true;
  s.policy_speedup = 0.47;
  s.bypass_enters = 2;
  s.bypass_exits = 1;
  const auto payload = encode_stats_response(s);
  const Decoded d = decode_payload(payload.data(), payload.size());
  ASSERT_EQ(d.type, MsgType::StatsResponse);
  EXPECT_EQ(d.stats.rejected_quota, 3u);
  EXPECT_EQ(d.stats.replicas, 2u);
  EXPECT_TRUE(d.stats.adaptive_enabled);
  EXPECT_EQ(d.stats.policy_keys, 5u);
  EXPECT_EQ(d.stats.policy_window_us, 125);
  EXPECT_EQ(d.stats.policy_max_batch, 4u);
  EXPECT_TRUE(d.stats.policy_bypass);
  EXPECT_DOUBLE_EQ(d.stats.policy_speedup, 0.47);
  EXPECT_EQ(d.stats.bypass_enters, 2u);
  EXPECT_EQ(d.stats.bypass_exits, 1u);
}

TEST(ServeStatsV3, V2SnapshotRoundTripsWithoutPolicyBlock) {
  // A snapshot tagged v2 must encode byte-compatibly with the pre-v3 layout
  // (no trailing policy block) and decode with v3 defaults.
  StatsResponse s;
  s.stats_version = 2;
  s.admitted = 7;
  s.rejected_quota = 99;  // must NOT survive: v2 has no such field
  const auto payload = encode_stats_response(s);
  const Decoded d = decode_payload(payload.data(), payload.size());
  ASSERT_EQ(d.type, MsgType::StatsResponse);
  EXPECT_EQ(d.stats.admitted, 7u);
  EXPECT_EQ(d.stats.rejected_quota, 0u);
  EXPECT_EQ(d.stats.replicas, 0u);
  EXPECT_FALSE(d.stats.adaptive_enabled);
}

}  // namespace
