/// Mixed-precision pipeline tests: the fp32 building blocks against their
/// fp64 twins (BlockOpsF moves, cluster products), the health gate's
/// accept/fallback behaviour, end-to-end mixed-vs-fp64 accuracy through
/// both the single-call driver and the batched graph engine, and the
/// precision plumbing helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "fsi/bsofi/bsofi.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/pcyclic/adjacency.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"
#include "fsi/precision.hpp"
#include "fsi/qmc/hubbard.hpp"
#include "fsi/qmc/multi_gf.hpp"
#include "fsi/selinv/fsi.hpp"
#include "fsi/util/check.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using dense::index_t;
using dense::Matrix;
using dense::MatrixF;
using fsi::testing::expect_close;

/// Restore the process-wide mixed gate on scope exit (tests below lower it
/// to force fallbacks).
struct GateGuard {
  selinv::MixedGate saved = selinv::mixed_gate();
  ~GateGuard() { selinv::set_mixed_gate(saved); }
};

/// |fp32 result - fp64 twin| within float round-off for O(1) blocks.
constexpr double kFloatTol = 1e-4;

pcyclic::PCyclicMatrix hubbard_matrix(index_t n, index_t l, double u,
                                      double beta, std::uint64_t seed) {
  qmc::HubbardParams p;
  p.u = u;
  p.beta = beta;
  p.l = l;
  qmc::HubbardModel model(qmc::Lattice::chain(n), p);
  util::Rng rng(seed);
  qmc::HsField field(l, n, rng);
  return model.build_m(field, qmc::Spin::Up);
}

// ---- fp32 building blocks vs their fp64 twins ----------------------------

TEST(BlockOpsF, EveryMoveMatchesFp64TwinAtEveryPosition) {
  // All four moves at every (k, l) — covers the twelve boundary cases
  // (diagonal / first / last row / column / corners) the fp64 BlockOps
  // implements, promised in adjacency.cpp to stay in lockstep.
  const index_t n = 4, l = 6;
  util::Rng rng(0xAD);
  pcyclic::PCyclicMatrix m = pcyclic::PCyclicMatrix::random(n, l, rng);
  const pcyclic::BlockOps ops(m);
  const pcyclic::BlockOpsF ops_f(m);

  for (index_t k = 0; k < l; ++k) {
    for (index_t col = 0; col < l; ++col) {
      // A reproducible O(1) "current block" to move from.
      util::Rng grng(static_cast<std::uint64_t>(k * 100 + col));
      Matrix g = fsi::testing::random_matrix(n, n, grng);
      MatrixF g_f = dense::demoted(g.view());

      SCOPED_TRACE("k=" + std::to_string(k) + " l=" + std::to_string(col));
      expect_close(dense::promoted(ops_f.up(k, col, g_f).view()),
                   ops.up(k, col, g), kFloatTol, "up");
      expect_close(dense::promoted(ops_f.down(k, col, g_f).view()),
                   ops.down(k, col, g), kFloatTol, "down");
      expect_close(dense::promoted(ops_f.left(k, col, g_f).view()),
                   ops.left(k, col, g), kFloatTol, "left");
      expect_close(dense::promoted(ops_f.right(k, col, g_f).view()),
                   ops.right(k, col, g), kFloatTol, "right");
    }
  }
}

TEST(ClusterMixed, ProductsAndReducedMatrixMatchFp64) {
  const index_t n = 6, l = 12, c = 3, q = 1;
  pcyclic::PCyclicMatrix m = hubbard_matrix(n, l, 2.0, 1.0, 0xC1);

  const index_t b = l / c;
  for (index_t i = 0; i < b; ++i) {
    MatrixF prod_f = selinv::cluster_product_f(m, c, q, i);
    Matrix prod = selinv::cluster_product(m, c, q, i);
    expect_close(dense::promoted(prod_f.view()), prod, kFloatTol,
                 "cluster product");
  }

  pcyclic::PCyclicMatrix red_mixed = selinv::cluster_mixed(m, c, q);
  pcyclic::PCyclicMatrix red = selinv::cluster(m, c, q);
  ASSERT_EQ(red_mixed.num_blocks(), red.num_blocks());
  for (index_t i = 0; i < red.num_blocks(); ++i)
    expect_close(red_mixed.b(i), red.b(i), kFloatTol, "reduced block");
}

TEST(MixedGateHelpers, Cond1AndResidualProbeAreSane) {
  const index_t n = 4, l = 8, c = 2, q = 0;
  pcyclic::PCyclicMatrix m = hubbard_matrix(n, l, 2.0, 1.0, 0xC2);
  const pcyclic::Selection sel(l, c, q);

  pcyclic::PCyclicMatrix reduced = selinv::cluster(m, c, q);
  Matrix gtilde = bsofi::invert(reduced);
  const double cond1 = selinv::reduced_cond1(reduced, gtilde);
  EXPECT_GT(cond1, 1.0);  // it is an upper bound on kappa_1 >= 1

  const pcyclic::BlockOps ops(m);
  auto cols = selinv::wrap(ops, gtilde, pcyclic::Pattern::Columns, sel);
  const double r =
      selinv::probe_residual(m, cols, pcyclic::Pattern::Columns, sel);
  EXPECT_GE(r, 0.0);
  EXPECT_LE(r, 1e-10);  // fp64 wrap: residual at round-off level

  // Patterns that store no adjacent blocks cannot be probed.
  auto diag = selinv::wrap(ops, gtilde, pcyclic::Pattern::Diagonal, sel);
  EXPECT_LT(selinv::probe_residual(m, diag, pcyclic::Pattern::Diagonal, sel),
            0.0);
}

// ---- end-to-end: single-call driver --------------------------------------

TEST(FsiMixed, SelectedBlocksWithinToleranceOfFp64) {
  const index_t n = 6, l = 12, c = 3;
  pcyclic::PCyclicMatrix m = hubbard_matrix(n, l, 2.0, 1.0, 0xE1);

  for (auto pattern : {pcyclic::Pattern::AllDiagonals,
                       pcyclic::Pattern::Columns, pcyclic::Pattern::Rows}) {
    selinv::FsiOptions opts;
    opts.c = c;
    opts.q = 1;
    opts.pattern = pattern;

    opts.precision = Precision::Fp64;
    util::Rng rng64(5);
    auto ref = selinv::fsi(m, opts, rng64);

    opts.precision = Precision::Mixed;
    util::Rng rng32(5);
    selinv::FsiStats stats;
    auto got = selinv::fsi(m, opts, rng32, &stats);

    SCOPED_TRACE(pcyclic::pattern_name(pattern));
    ASSERT_EQ(got.size(), ref.size());
    const double tol =
        stats.precision_used == Precision::Mixed ? 5e-3 : 1e-15;
    for (const auto& [k, col] : ref.keys())
      expect_close(got.at(k, col), ref.at(k, col), tol, "mixed block");
  }
}

TEST(FsiMixed, ForcedFallbackReturnsFp64ResultAndCounts) {
  GateGuard guard;
  const index_t n = 5, l = 8, c = 2;
  pcyclic::PCyclicMatrix m = hubbard_matrix(n, l, 2.0, 1.0, 0xE2);

  selinv::FsiOptions opts;
  opts.c = c;
  opts.q = 0;
  opts.pattern = pcyclic::Pattern::Columns;

  opts.precision = Precision::Fp64;
  util::Rng rng64(9);
  auto ref = selinv::fsi(m, opts, rng64);

  // A zero gate rejects every mixed run (cond1 >= 1 > 0 always trips).
  selinv::set_mixed_gate({0.0, 0.0});
  const auto fallbacks_before =
      obs::metrics::total(obs::metrics::Counter::MixedFallbacks);
  const auto runs_before =
      obs::metrics::total(obs::metrics::Counter::MixedRuns);

  opts.precision = Precision::Mixed;
  util::Rng rng32(9);
  selinv::FsiStats stats;
  auto got = selinv::fsi(m, opts, rng32, &stats);

  EXPECT_TRUE(stats.mixed_fallback);
  EXPECT_EQ(stats.precision_used, Precision::Fp64);
  EXPECT_EQ(obs::metrics::total(obs::metrics::Counter::MixedRuns),
            runs_before + 1);
  EXPECT_EQ(obs::metrics::total(obs::metrics::Counter::MixedFallbacks),
            fallbacks_before + 1);

  // The fallback re-runs the very same fp64 path a Precision::Fp64 call
  // takes (same pinned q), so the result is bit-identical.
  ASSERT_EQ(got.size(), ref.size());
  for (const auto& [k, col] : ref.keys())
    expect_close(got.at(k, col), ref.at(k, col), 0.0, "fallback block");
}

// ---- end-to-end: batched graph engine ------------------------------------

std::vector<qmc::FsiBatchTask> make_tasks(const qmc::HubbardModel& model,
                                          int count) {
  std::vector<qmc::FsiBatchTask> tasks;
  for (int i = 0; i < count; ++i) {
    util::Rng rng(100 + static_cast<std::uint64_t>(i));
    tasks.push_back(qmc::FsiBatchTask{
        qmc::HsField(model.params().l, model.num_sites(), rng),
        /*q=*/i % 2, /*heavy=*/true});
  }
  return tasks;
}

TEST(FsiMixedBatch, MeasurementsWithinToleranceOfFp64) {
  qmc::HubbardParams p;
  p.u = 2.0;
  p.beta = 1.0;
  p.l = 8;
  const qmc::HubbardModel model(qmc::Lattice::chain(6), p);
  const auto tasks = make_tasks(model, 2);

  qmc::FsiBatchOptions opts;
  opts.cluster_size = 2;

  opts.precision = Precision::Fp64;
  const auto ref = qmc::run_fsi_batch(model, tasks, opts);

  opts.precision = Precision::Mixed;
  qmc::SchedSummary sched;
  const auto got = qmc::run_fsi_batch(model, tasks, opts, &sched);

  EXPECT_EQ(sched.mixed_tasks, static_cast<std::uint32_t>(tasks.size()));
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t t = 0; t < ref.size(); ++t) {
    const auto r = ref[t].serialize();
    const auto g = got[t].serialize();
    ASSERT_EQ(g.size(), r.size());
    for (std::size_t i = 0; i < r.size(); ++i)
      EXPECT_NEAR(g[i], r[i], 1e-3 * (1.0 + std::abs(r[i])))
          << "task " << t << " measurement " << i;
  }
}

TEST(FsiMixedBatch, ForcedFallbackRecomputesEveryTaskInFp64) {
  GateGuard guard;
  qmc::HubbardParams p;
  p.u = 2.0;
  p.beta = 1.0;
  p.l = 8;
  const qmc::HubbardModel model(qmc::Lattice::chain(5), p);
  const auto tasks = make_tasks(model, 2);

  qmc::FsiBatchOptions opts;
  opts.cluster_size = 2;

  opts.precision = Precision::Fp64;
  const auto ref = qmc::run_fsi_batch(model, tasks, opts);

  selinv::set_mixed_gate({0.0, 0.0});
  opts.precision = Precision::Mixed;
  qmc::SchedSummary sched;
  const auto got = qmc::run_fsi_batch(model, tasks, opts, &sched);

  EXPECT_EQ(sched.mixed_tasks, static_cast<std::uint32_t>(tasks.size()));
  EXPECT_EQ(sched.mixed_fallbacks, static_cast<std::uint32_t>(tasks.size()));

  // The gate's recompute is the fp64 pipeline on the same task inputs, so
  // the measurements must agree with a pure-fp64 batch to fp64 round-off.
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t t = 0; t < ref.size(); ++t) {
    const auto r = ref[t].serialize();
    const auto g = got[t].serialize();
    ASSERT_EQ(g.size(), r.size());
    for (std::size_t i = 0; i < r.size(); ++i)
      EXPECT_NEAR(g[i], r[i], 1e-12 * (1.0 + std::abs(r[i])))
          << "task " << t << " measurement " << i;
  }
}

// ---- precision plumbing helpers ------------------------------------------

TEST(PrecisionHelpers, ParseNamesAndWireCodes) {
  Precision p = Precision::Fp64;
  EXPECT_TRUE(parse_precision("mixed", p));
  EXPECT_EQ(p, Precision::Mixed);
  EXPECT_TRUE(parse_precision("fp32", p));
  EXPECT_EQ(p, Precision::Mixed);
  EXPECT_TRUE(parse_precision("fp64", p));
  EXPECT_EQ(p, Precision::Fp64);
  EXPECT_TRUE(parse_precision("double", p));
  EXPECT_EQ(p, Precision::Fp64);
  EXPECT_FALSE(parse_precision("fp16", p));

  EXPECT_STREQ(precision_name(Precision::Fp64), "fp64");
  EXPECT_STREQ(precision_name(Precision::Mixed), "mixed");

  Precision q = Precision::Fp64;
  EXPECT_TRUE(precision_from_u32(1, q));
  EXPECT_EQ(q, Precision::Mixed);
  EXPECT_TRUE(precision_from_u32(0, q));
  EXPECT_EQ(q, Precision::Fp64);
  EXPECT_FALSE(precision_from_u32(7, q));
}

TEST(PrecisionHelpers, EnvValueFailsLoudOnGarbage) {
  // Unset / empty keep the fp64 default...
  EXPECT_EQ(precision_from_env_value(nullptr), Precision::Fp64);
  EXPECT_EQ(precision_from_env_value(""), Precision::Fp64);
  EXPECT_EQ(precision_from_env_value("MIXED"), Precision::Mixed);
  EXPECT_EQ(precision_from_env_value("double"), Precision::Fp64);
  // ...but a typo must throw, not silently run the whole job in fp64.
  EXPECT_THROW(precision_from_env_value("fp16"), util::CheckError);
  try {
    precision_from_env_value("fast");
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fast"), std::string::npos);
    EXPECT_NE(what.find("mixed"), std::string::npos);
  }
}

}  // namespace
