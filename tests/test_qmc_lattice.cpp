/// Tests for the lattice substrate: adjacency, neighbours, distance classes.

#include <gtest/gtest.h>

#include "fsi/qmc/dqmc.hpp"
#include "fsi/qmc/lattice.hpp"
#include "fsi/util/check.hpp"

namespace {

using namespace fsi;
using namespace fsi::qmc;

TEST(Lattice, ChainAdjacency) {
  Lattice lat = Lattice::chain(5);
  EXPECT_EQ(lat.num_sites(), 5);
  const Matrix& k = lat.adjacency();
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_EQ(k(i, (i + 1) % 5), 1.0);
    EXPECT_EQ(k((i + 1) % 5, i), 1.0);
    EXPECT_EQ(k(i, i), 0.0);
    EXPECT_EQ(lat.neighbors(i).size(), 2u);
  }
  EXPECT_EQ(k(0, 2), 0.0);
}

TEST(Lattice, RectangleAdjacencyAndDegree) {
  Lattice lat = Lattice::rectangle(4, 4);
  EXPECT_EQ(lat.num_sites(), 16);
  const Matrix& k = lat.adjacency();
  for (index_t i = 0; i < 16; ++i) {
    EXPECT_EQ(lat.neighbors(i).size(), 4u) << "site " << i;
    double degree = 0;
    for (index_t j = 0; j < 16; ++j) {
      degree += k(i, j);
      EXPECT_EQ(k(i, j), k(j, i));  // symmetric
    }
    EXPECT_EQ(degree, 4.0);
  }
}

TEST(Lattice, PeriodicWrapAroundNeighbours) {
  Lattice lat = Lattice::rectangle(4, 3);
  // Site (0, 0) neighbours: (1,0), (3,0), (0,1), (0,2).
  const auto& nbr = lat.neighbors(lat.site(0, 0));
  EXPECT_EQ(nbr.size(), 4u);
  auto has = [&](index_t s) {
    return std::find(nbr.begin(), nbr.end(), s) != nbr.end();
  };
  EXPECT_TRUE(has(lat.site(1, 0)));
  EXPECT_TRUE(has(lat.site(3, 0)));
  EXPECT_TRUE(has(lat.site(0, 1)));
  EXPECT_TRUE(has(lat.site(0, 2)));
}

TEST(Lattice, TwoSiteChainCollapsesDuplicateNeighbours) {
  Lattice lat = Lattice::chain(2);
  EXPECT_EQ(lat.neighbors(0).size(), 1u);  // +1 and -1 are the same site
  EXPECT_EQ(lat.adjacency()(0, 1), 1.0);
}

TEST(Lattice, DistanceClassesAreSymmetricAndBounded) {
  Lattice lat = Lattice::rectangle(4, 6);
  const index_t dmax = lat.num_distance_classes();
  EXPECT_EQ(dmax, (4 / 2 + 1) * (6 / 2 + 1));
  for (index_t i = 0; i < lat.num_sites(); ++i)
    for (index_t j = 0; j < lat.num_sites(); ++j) {
      const index_t d = lat.distance_class(i, j);
      EXPECT_GE(d, 0);
      EXPECT_LT(d, dmax);
      EXPECT_EQ(d, lat.distance_class(j, i));
    }
  EXPECT_EQ(lat.distance_class(3, 3), 0);  // self-distance is class 0
}

TEST(Lattice, DistanceClassSizesSumToAllPairs) {
  Lattice lat = Lattice::rectangle(4, 4);
  index_t total = 0;
  for (index_t s : lat.distance_class_sizes()) total += s;
  EXPECT_EQ(total, lat.num_sites() * lat.num_sites());
}

TEST(Lattice, PeriodicDistanceFolding) {
  Lattice lat = Lattice::chain(6);
  // Sites 0 and 5 are distance 1 apart (periodic), not 5.
  EXPECT_EQ(lat.distance_class(0, 5), lat.distance_class(0, 1));
  // Max distance on a 6-chain is 3.
  EXPECT_EQ(lat.num_distance_classes(), 4);
}

TEST(Lattice, InvalidSizesThrow) {
  EXPECT_THROW(Lattice::chain(0), util::CheckError);
  EXPECT_THROW(Lattice::rectangle(0, 3), util::CheckError);
}

}  // namespace

namespace {

using fsi::qmc::Lattice;
using fsi::dense::index_t;

TEST(GeneralGraph, SquareRingMatchesChain) {
  // A 4-cycle given as an edge list behaves like chain(4).
  Lattice g = Lattice::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  Lattice c = Lattice::chain(4);
  EXPECT_TRUE(g.is_general_graph());
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_EQ(g.neighbors(i).size(), 2u);
    for (index_t j = 0; j < 4; ++j) {
      EXPECT_EQ(g.adjacency()(i, j), c.adjacency()(i, j));
      EXPECT_EQ(g.distance_class(i, j), c.distance_class(i, j));
    }
  }
  // Bipartite ring: alternating parity.
  EXPECT_EQ(g.parity(0), -g.parity(1));
  EXPECT_EQ(g.parity(0), g.parity(2));
}

TEST(GeneralGraph, TriangleIsNotBipartite) {
  Lattice t = Lattice::from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  // Non-bipartite: parity falls back to all +1.
  EXPECT_EQ(t.parity(0), 1);
  EXPECT_EQ(t.parity(1), 1);
  EXPECT_EQ(t.parity(2), 1);
  EXPECT_EQ(t.num_distance_classes(), 2);  // distances 0, 1
}

TEST(GeneralGraph, StarGraphDistances) {
  // Star: center 0 connected to 1..4.
  Lattice s = Lattice::from_edges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(s.neighbors(0).size(), 4u);
  EXPECT_EQ(s.distance_class(1, 2), 2);  // leaf to leaf via center
  EXPECT_EQ(s.distance_class(0, 3), 1);
  EXPECT_EQ(s.num_distance_classes(), 3);
  index_t total = 0;
  for (index_t v : s.distance_class_sizes()) total += v;
  EXPECT_EQ(total, 25);
}

TEST(GeneralGraph, DisconnectedPairsGetOwnClass) {
  Lattice g = Lattice::from_edges(4, {{0, 1}, {2, 3}});
  const index_t dmax = g.num_distance_classes();
  EXPECT_EQ(g.distance_class(0, 2), dmax - 1);
  EXPECT_EQ(g.distance_class(0, 1), 1);
}

TEST(GeneralGraph, RejectsBadEdges) {
  EXPECT_THROW(Lattice::from_edges(3, {{0, 3}}), fsi::util::CheckError);
  EXPECT_THROW(Lattice::from_edges(3, {{1, 1}}), fsi::util::CheckError);
}

TEST(GeneralGraph, DuplicateEdgesCollapse) {
  Lattice g = Lattice::from_edges(2, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.adjacency()(0, 1), 1.0);
}

TEST(GeneralGraph, DqmcRunsOnGeneralGeometry) {
  // Full pipeline on a non-bipartite geometry (triangle + tail).
  Lattice g = Lattice::from_edges(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  fsi::qmc::HubbardParams p;
  p.u = 2.0;
  p.beta = 1.0;
  p.l = 8;
  fsi::qmc::HubbardModel model(g, p);
  fsi::qmc::DqmcOptions opt;
  opt.warmup_sweeps = 4;
  opt.measurement_sweeps = 8;
  opt.cluster_size = 4;
  opt.seed = 13;
  auto r = fsi::qmc::run_dqmc(model, opt);
  EXPECT_GT(r.acceptance_rate, 0.0);
  EXPECT_NEAR(r.measurements.density(), 1.0, 0.3);
}

}  // namespace
