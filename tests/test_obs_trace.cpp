/// Tests for the fsi::obs subsystem: span recording and nesting, thread
/// attribution, counter merge across threads, disabled-mode no-op, and a
/// schema validation of the exported chrome://tracing JSON for a real FSI
/// run (it must parse and contain the CLS/BSOFI/WRP stage spans).

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fsi/obs/metrics.hpp"
#include "fsi/obs/report.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/selinv/fsi.hpp"
#include "fsi/util/flops.hpp"

namespace {

using namespace fsi;

/// Minimal recursive-descent JSON parser, sufficient to *validate* the
/// exported trace and to pull out the span names and thread ids.  Not a
/// general-purpose parser: numbers/strings are validated and skipped.
class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : s_(std::move(text)) {}

  /// Parse the whole document; false on any syntax error or trailing junk.
  bool parse() {
    pos_ = 0;
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  /// String values seen for a given key (e.g. every event "name").
  const std::set<std::string>& strings_for(const std::string& key) {
    return by_key_[key];
  }
  /// Raw number literals seen for a given key (e.g. every "tid").
  const std::set<std::string>& numbers_for(const std::string& key) {
    return by_key_[key];
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    std::string v;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        pos_ += 2;
        v += '?';  // escaped char; exact value irrelevant for validation
      } else {
        v += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    if (out != nullptr) *out = v;
    return true;
  }
  bool number(std::string* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (!digits) return false;
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      const std::size_t before = pos_;
      eat_digits();
      if (pos_ == before) return false;
    }
    if (out != nullptr) *out = s_.substr(start, pos_ - start);
    return true;
  }
  bool value(const std::string& key = "") {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      std::string v;
      if (!string(&v)) return false;
      if (!key.empty()) by_key_[key].insert(v);
      return true;
    }
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    std::string num;
    if (!number(&num)) return false;
    if (!key.empty()) by_key_[key].insert(num);
    return true;
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
      if (!value(key)) return false;
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return s_[pos_++] == '}';
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') return ++pos_, true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return s_[pos_++] == ']';
    }
  }

  std::string s_;
  std::size_t pos_ = 0;
  std::map<std::string, std::set<std::string>> by_key_;
};

/// RAII: enable tracing on a clean slate, restore disabled + clean on exit.
struct TraceSession {
  TraceSession() {
    obs::clear();
    obs::set_enabled(true);
  }
  ~TraceSession() {
    obs::set_enabled(false);
    obs::clear();
  }
};

TEST(ObsTrace, DisabledModeRecordsNothing) {
  obs::set_enabled(false);
  obs::clear();
  {
    obs::Span outer("noop.outer");
    FSI_OBS_SPAN("noop.inner");
  }
  EXPECT_TRUE(obs::summary().empty());
  EXPECT_EQ(obs::total_seconds("noop.outer"), 0.0);
  // The exported document is still valid JSON, just with no events.
  JsonChecker checker(obs::chrome_trace_json());
  EXPECT_TRUE(checker.parse());
}

TEST(ObsTrace, SpanNestingAndSummary) {
  TraceSession session;
  {
    obs::Span outer("nest.outer");
    for (int i = 0; i < 3; ++i) {
      FSI_OBS_SPAN("nest.inner");
    }
  }
  const auto stats = obs::summary();
  ASSERT_EQ(stats.size(), 2u);
  double outer_total = 0.0, inner_total = 0.0;
  std::uint64_t inner_count = 0;
  for (const auto& s : stats) {
    if (s.name == "nest.outer") outer_total = s.total_s;
    if (s.name == "nest.inner") {
      inner_total = s.total_s;
      inner_count = s.count;
      EXPECT_LE(s.min_s, s.p50_s);
      EXPECT_LE(s.p50_s, s.max_s);
    }
  }
  EXPECT_EQ(inner_count, 3u);
  // The outer span encloses all inner spans.
  EXPECT_GE(outer_total, inner_total);
  EXPECT_DOUBLE_EQ(obs::total_seconds("nest.outer"), outer_total);
}

TEST(ObsTrace, ThreadAttribution) {
  TraceSession session;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([] { FSI_OBS_SPAN("attr.worker"); });
  for (auto& w : workers) w.join();

  const auto stats = obs::summary();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].count, 4u);

  // Each std::thread records under its own tid in the chrome export.
  const std::string json = obs::chrome_trace_json();
  JsonChecker checker(json);
  ASSERT_TRUE(checker.parse()) << json;
  EXPECT_EQ(checker.numbers_for("tid").size(), 4u);
}

TEST(ObsTrace, CounterMergeAcrossThreads) {
  namespace m = obs::metrics;
  m::reset(m::Counter::MpiBytes);
  m::Scope scope(m::Counter::MpiBytes);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([] { m::add(m::Counter::MpiBytes, 25); });
  for (auto& w : workers) w.join();
  m::add(m::Counter::MpiBytes, 1);
  EXPECT_EQ(scope.elapsed(), 101u);

  // The flops façade feeds the same registry.
  util::flops::reset();
  util::flops::add(42);
  EXPECT_EQ(m::total(m::Counter::Flops), 42u);
  EXPECT_EQ(util::flops::total(), 42u);

  // snapshot() covers every counter with a stable name.
  const auto snap = m::snapshot();
  ASSERT_EQ(snap.size(), static_cast<std::size_t>(m::Counter::kCount));
  EXPECT_STREQ(snap[0].first, "flops");
}

TEST(ObsTrace, ExportedFsiTraceIsValidAndContainsStageSpans) {
  TraceSession session;

  util::Rng rng(7);
  const dense::index_t n = 4, l = 12, c = 3;
  pcyclic::PCyclicMatrix m = pcyclic::PCyclicMatrix::random(n, l, rng);
  pcyclic::BlockOps ops(m);
  selinv::FsiOptions opts;
  opts.c = c;
  opts.q = 1;
  selinv::FsiStats stats;
  (void)selinv::fsi(m, ops, opts, rng, &stats);

  const std::string json = obs::chrome_trace_json();
  JsonChecker checker(json);
  ASSERT_TRUE(checker.parse()) << json;

  // Schema: the CLS/BSOFI/WRP stage spans and their per-iteration children
  // must be present by name.
  const auto& names = checker.strings_for("name");
  EXPECT_TRUE(names.count("fsi.cls")) << json;
  EXPECT_TRUE(names.count("fsi.bsofi")) << json;
  EXPECT_TRUE(names.count("fsi.wrap")) << json;
  EXPECT_TRUE(names.count("cls.cluster"));
  EXPECT_TRUE(names.count("wrp.seed"));
  EXPECT_TRUE(names.count("bsofi.factor"));
  // Chrome requires ph/ts/dur on complete events; all ours are "X".
  EXPECT_TRUE(checker.strings_for("ph").count("X"));

  // The span-derived stage time matches the FsiStats measurement.
  EXPECT_NEAR(obs::total_seconds("fsi.cls"), stats.seconds_cls,
              0.2 * stats.seconds_cls + 1e-4);

  // Model-vs-measured report joins cleanly and prices the stages.
  selinv::ComplexityModel cm{n, l, c};
  obs::Report report =
      obs::make_fsi_report(stats, cm, pcyclic::Pattern::Columns, 10.0);
  ASSERT_EQ(report.rows().size(), 3u);
  EXPECT_EQ(report.rows()[0].name, "CLS");
  EXPECT_DOUBLE_EQ(report.rows()[0].predicted_flops, cm.cls_flops());
  EXPECT_GT(report.total().measured_flops, 0.0);
  JsonChecker report_checker(report.json());
  EXPECT_TRUE(report_checker.parse()) << report.json();
}

TEST(ObsTrace, ClearResetsEventsButNotCounters) {
  TraceSession session;
  namespace m = obs::metrics;
  m::reset(m::Counter::KernelCalls);
  m::add(m::Counter::KernelCalls, 5);
  { FSI_OBS_SPAN("clear.me"); }
  EXPECT_FALSE(obs::summary().empty());
  obs::clear();
  EXPECT_TRUE(obs::summary().empty());
  EXPECT_EQ(m::total(m::Counter::KernelCalls), 5u);
}

}  // namespace
