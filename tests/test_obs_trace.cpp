/// Tests for the fsi::obs subsystem: span recording and nesting, thread
/// attribution, counter merge across threads, disabled-mode no-op, and a
/// schema validation of the exported chrome://tracing JSON for a real FSI
/// run (it must parse and contain the CLS/BSOFI/WRP stage spans).

#include <gtest/gtest.h>

#include <stdlib.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fsi/obs/metrics.hpp"
#include "fsi/obs/report.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/selinv/fsi.hpp"
#include "fsi/util/flops.hpp"

#include "json_checker.hpp"

namespace {

using namespace fsi;
using fsi::testing::JsonChecker;

/// RAII: enable tracing on a clean slate, restore disabled + clean on exit.
struct TraceSession {
  TraceSession() {
    obs::clear();
    obs::set_enabled(true);
  }
  ~TraceSession() {
    obs::set_enabled(false);
    obs::clear();
  }
};

TEST(ObsTrace, DisabledModeRecordsNothing) {
  obs::set_enabled(false);
  obs::clear();
  {
    obs::Span outer("noop.outer");
    FSI_OBS_SPAN("noop.inner");
  }
  EXPECT_TRUE(obs::summary().empty());
  EXPECT_EQ(obs::total_seconds("noop.outer"), 0.0);
  // The exported document is still valid JSON, just with no events.
  JsonChecker checker(obs::chrome_trace_json());
  EXPECT_TRUE(checker.parse());
}

TEST(ObsTrace, SpanNestingAndSummary) {
  TraceSession session;
  {
    obs::Span outer("nest.outer");
    for (int i = 0; i < 3; ++i) {
      FSI_OBS_SPAN("nest.inner");
    }
  }
  const auto stats = obs::summary();
  ASSERT_EQ(stats.size(), 2u);
  double outer_total = 0.0, inner_total = 0.0;
  std::uint64_t inner_count = 0;
  for (const auto& s : stats) {
    if (s.name == "nest.outer") outer_total = s.total_s;
    if (s.name == "nest.inner") {
      inner_total = s.total_s;
      inner_count = s.count;
      EXPECT_LE(s.min_s, s.p50_s);
      EXPECT_LE(s.p50_s, s.max_s);
    }
  }
  EXPECT_EQ(inner_count, 3u);
  // The outer span encloses all inner spans.
  EXPECT_GE(outer_total, inner_total);
  EXPECT_DOUBLE_EQ(obs::total_seconds("nest.outer"), outer_total);
}

TEST(ObsTrace, ThreadAttribution) {
  TraceSession session;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([] { FSI_OBS_SPAN("attr.worker"); });
  for (auto& w : workers) w.join();

  const auto stats = obs::summary();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].count, 4u);

  // Each std::thread records under its own tid in the chrome export.
  const std::string json = obs::chrome_trace_json();
  JsonChecker checker(json);
  ASSERT_TRUE(checker.parse()) << json;
  EXPECT_EQ(checker.numbers_for("tid").size(), 4u);
}

TEST(ObsTrace, CounterMergeAcrossThreads) {
  namespace m = obs::metrics;
  m::reset(m::Counter::MpiBytes);
  m::Scope scope(m::Counter::MpiBytes);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([] { m::add(m::Counter::MpiBytes, 25); });
  for (auto& w : workers) w.join();
  m::add(m::Counter::MpiBytes, 1);
  EXPECT_EQ(scope.elapsed(), 101u);

  // The flops façade feeds the same registry.
  util::flops::reset();
  util::flops::add(42);
  EXPECT_EQ(m::total(m::Counter::Flops), 42u);
  EXPECT_EQ(util::flops::total(), 42u);

  // snapshot() covers every counter with a stable name.
  const auto snap = m::snapshot();
  ASSERT_EQ(snap.size(), static_cast<std::size_t>(m::Counter::kCount));
  EXPECT_STREQ(snap[0].first, "flops");
}

TEST(ObsTrace, TraceIdTagsExportedEvents) {
  TraceSession session;
  obs::record_interval("tagged.op", 1000, 2000, /*trace_id=*/48879);
  obs::record_interval("plain.op", 3000, 4000);
  const std::string json = obs::chrome_trace_json();
  JsonChecker checker(json);
  ASSERT_TRUE(checker.parse()) << json;
  // The tagged event exports its correlation id in args; the untagged one
  // stays clean (exactly one trace_id key in the document).
  EXPECT_NE(json.find("\"trace_id\":48879"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"trace_id\":0"), std::string::npos) << json;

  // The process-wide active trace tags 3-arg intervals (the executor-span
  // correlation path the serve batcher uses).
  obs::set_active_trace(1234);
  obs::record_interval("active.op", 5000, 6000);
  obs::set_active_trace(0);
  EXPECT_EQ(obs::active_trace(), 0u);
  EXPECT_NE(obs::chrome_trace_json().find("\"trace_id\":1234"),
            std::string::npos);
}

TEST(ObsTrace, ExportedFsiTraceIsValidAndContainsStageSpans) {
  TraceSession session;

  util::Rng rng(7);
  const dense::index_t n = 4, l = 12, c = 3;
  pcyclic::PCyclicMatrix m = pcyclic::PCyclicMatrix::random(n, l, rng);
  pcyclic::BlockOps ops(m);
  selinv::FsiOptions opts;
  opts.c = c;
  opts.q = 1;
  selinv::FsiStats stats;
  (void)selinv::fsi(m, ops, opts, rng, &stats);

  const std::string json = obs::chrome_trace_json();
  JsonChecker checker(json);
  ASSERT_TRUE(checker.parse()) << json;

  // Schema: the CLS/BSOFI/WRP stage spans and their per-iteration children
  // must be present by name.
  const auto& names = checker.strings_for("name");
  EXPECT_TRUE(names.count("fsi.cls")) << json;
  EXPECT_TRUE(names.count("fsi.bsofi")) << json;
  EXPECT_TRUE(names.count("fsi.wrap")) << json;
  EXPECT_TRUE(names.count("cls.cluster"));
  EXPECT_TRUE(names.count("wrp.seed"));
  EXPECT_TRUE(names.count("bsofi.factor"));
  // Chrome requires ph/ts/dur on complete events; all ours are "X".
  EXPECT_TRUE(checker.strings_for("ph").count("X"));

  // The span-derived stage time matches the FsiStats measurement.
  EXPECT_NEAR(obs::total_seconds("fsi.cls"), stats.seconds_cls,
              0.2 * stats.seconds_cls + 1e-4);

  // Model-vs-measured report joins cleanly and prices the stages.
  selinv::ComplexityModel cm{n, l, c};
  obs::Report report =
      obs::make_fsi_report(stats, cm, pcyclic::Pattern::Columns, 10.0);
  ASSERT_EQ(report.rows().size(), 3u);
  EXPECT_EQ(report.rows()[0].name, "CLS");
  EXPECT_DOUBLE_EQ(report.rows()[0].predicted_flops, cm.cls_flops());
  EXPECT_GT(report.total().measured_flops, 0.0);
  JsonChecker report_checker(report.json());
  EXPECT_TRUE(report_checker.parse()) << report.json();
}

TEST(ObsTrace, TraceArtifactsRouteThroughArtifactDir) {
  TraceSession session;
  { FSI_OBS_SPAN("route.me"); }

  char dir_template[] = "/tmp/fsi_trace_route_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir(dir_template);

  const char* old_bench = std::getenv("FSI_BENCH_DIR");
  const std::string saved_bench = old_bench != nullptr ? old_bench : "";
  const char* old_file = std::getenv("FSI_TRACE_FILE");
  const std::string saved_file = old_file != nullptr ? old_file : "";
  ::unsetenv("FSI_TRACE_FILE");
  ::setenv("FSI_BENCH_DIR", dir.c_str(), 1);

  // A bare basename lands under artifact_dir(), next to BENCH_*.json.
  const std::string routed = obs::write_trace_if_enabled("routing_check");
  EXPECT_EQ(routed, dir + "/routing_check.trace.json");
  EXPECT_TRUE(std::filesystem::exists(routed));

  // An explicit path (contains '/') is honoured verbatim.
  const std::string verbatim = obs::write_trace_if_enabled(dir + "/verbatim");
  EXPECT_EQ(verbatim, dir + "/verbatim.trace.json");
  EXPECT_TRUE(std::filesystem::exists(verbatim));

  // $FSI_TRACE_FILE overrides both.
  const std::string forced = dir + "/forced.json";
  ::setenv("FSI_TRACE_FILE", forced.c_str(), 1);
  EXPECT_EQ(obs::write_trace_if_enabled("ignored_basename"), forced);
  EXPECT_TRUE(std::filesystem::exists(forced));

  if (saved_file.empty())
    ::unsetenv("FSI_TRACE_FILE");
  else
    ::setenv("FSI_TRACE_FILE", saved_file.c_str(), 1);
  if (saved_bench.empty())
    ::unsetenv("FSI_BENCH_DIR");
  else
    ::setenv("FSI_BENCH_DIR", saved_bench.c_str(), 1);
  std::filesystem::remove_all(dir);
}

TEST(ObsTrace, ClearResetsEventsButNotCounters) {
  TraceSession session;
  namespace m = obs::metrics;
  m::reset(m::Counter::KernelCalls);
  m::add(m::Counter::KernelCalls, 5);
  { FSI_OBS_SPAN("clear.me"); }
  EXPECT_FALSE(obs::summary().empty());
  obs::clear();
  EXPECT_TRUE(obs::summary().empty());
  EXPECT_EQ(m::total(m::Counter::KernelCalls), 5u);
}

}  // namespace
