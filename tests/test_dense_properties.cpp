/// Algebraic property sweeps over the dense substrate — invariants that any
/// correct implementation must satisfy for *all* inputs, parameterised over
/// sizes and seeds (TEST_P).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/expm.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/dense/qr.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::dense;
using fsi::testing::expect_close;
using fsi::testing::random_dd_matrix;
using fsi::testing::random_matrix;

using Param = std::tuple<index_t, std::uint64_t>;  // size, seed

class DenseProps : public ::testing::TestWithParam<Param> {
 protected:
  index_t n() const { return std::get<0>(GetParam()); }
  std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(DenseProps, MatmulIsAssociative) {
  util::Rng rng(seed());
  Matrix a = random_matrix(n(), n(), rng);
  Matrix b = random_matrix(n(), n(), rng);
  Matrix c = random_matrix(n(), n(), rng);
  Matrix left = matmul(matmul(a, b), c);
  Matrix right = matmul(a, matmul(b, c));
  expect_close(left, right, 1e-11, "(AB)C = A(BC)");
}

TEST_P(DenseProps, IdentityIsNeutral) {
  util::Rng rng(seed() + 1);
  Matrix a = random_matrix(n(), n(), rng);
  expect_close(matmul(a, Matrix::identity(n())), a, 1e-14, "A I = A");
  expect_close(matmul(Matrix::identity(n()), a), a, 1e-14, "I A = A");
}

TEST_P(DenseProps, TransposeReversesProducts) {
  util::Rng rng(seed() + 2);
  Matrix a = random_matrix(n(), n(), rng);
  Matrix b = random_matrix(n(), n(), rng);
  // (AB)^T = B^T A^T, computed via gemm's trans flags.
  Matrix ab_t = transposed(matmul(a, b));
  Matrix bt_at(n(), n());
  gemm(Trans::Yes, Trans::Yes, 1.0, b, a, 0.0, bt_at);
  expect_close(ab_t, bt_at, 1e-12, "(AB)^T = B^T A^T");
}

TEST_P(DenseProps, DeterminantIsMultiplicative) {
  util::Rng rng(seed() + 3);
  Matrix a = random_dd_matrix(n(), rng);
  Matrix b = random_dd_matrix(n(), rng);
  LuFactorization la = LuFactorization::of(a);
  LuFactorization lb = LuFactorization::of(b);
  LuFactorization lab = LuFactorization::of(matmul(a, b));
  EXPECT_NEAR(lab.log_abs_det(), la.log_abs_det() + lb.log_abs_det(),
              1e-8 * std::fabs(lab.log_abs_det()) + 1e-10);
  EXPECT_EQ(lab.sign_det(), la.sign_det() * lb.sign_det());
}

TEST_P(DenseProps, InverseOfInverseIsOriginal) {
  util::Rng rng(seed() + 4);
  Matrix a = random_dd_matrix(n(), rng);
  expect_close(inverse(inverse(a)), a, 1e-9, "(A^-1)^-1 = A");
}

TEST_P(DenseProps, InverseOfTransposeIsTransposeOfInverse) {
  util::Rng rng(seed() + 5);
  Matrix a = random_dd_matrix(n(), rng);
  Matrix left = inverse(transposed(a));
  Matrix right = transposed(inverse(a));
  expect_close(left, right, 1e-9, "(A^T)^-1 = (A^-1)^T");
}

TEST_P(DenseProps, QPreservesFrobeniusNorm) {
  util::Rng rng(seed() + 6);
  Matrix a = random_matrix(n() + 5, n(), rng);
  QrFactorization qr(std::move(a));
  Matrix c = random_matrix(n() + 5, 3, rng);
  const double before = frobenius_norm(c);
  qr.apply_q(Side::Left, Trans::Yes, c);
  EXPECT_NEAR(frobenius_norm(c), before, 1e-10 * before);
}

TEST_P(DenseProps, RDiagonalProductMatchesDeterminantMagnitude) {
  // |det A| = prod |r_ii| for square A = QR.
  util::Rng rng(seed() + 7);
  Matrix a = random_dd_matrix(n(), rng);
  LuFactorization lu = LuFactorization::of(a);
  QrFactorization qr(std::move(a));
  double log_r = 0.0;
  for (index_t i = 0; i < n(); ++i)
    log_r += std::log(std::fabs(qr.packed()(i, i)));
  EXPECT_NEAR(log_r, lu.log_abs_det(), 1e-8 * std::fabs(log_r) + 1e-10);
}

TEST_P(DenseProps, ExpmOfSimilarityIsSimilarityOfExpm) {
  // e^{S A S^-1} = S e^A S^-1.
  const index_t m = std::min<index_t>(n(), 24);  // expm is O(n^3) * many
  util::Rng rng(seed() + 8);
  Matrix a = random_matrix(m, m, rng);
  Matrix s = random_dd_matrix(m, rng);
  Matrix sinv = inverse(s);
  Matrix sas = matmul(s, matmul(a, sinv));
  Matrix left = expm(sas);
  Matrix right = matmul(s, matmul(expm(a), sinv));
  expect_close(left, right, 1e-8, "expm similarity");
}

TEST_P(DenseProps, NormInequalitiesHold) {
  util::Rng rng(seed() + 9);
  Matrix a = random_matrix(n(), n(), rng);
  const double fro = frobenius_norm(a);
  const double one = one_norm(a);
  const double inf = inf_norm(a);
  const double mx = max_abs(a);
  EXPECT_LE(mx, fro + 1e-15);
  EXPECT_LE(fro, std::sqrt(double(n())) * std::max(one, inf) + 1e-12);
  EXPECT_GE(one, mx);
  EXPECT_GE(inf, mx);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DenseProps,
    ::testing::Combine(::testing::Values(index_t{2}, index_t{17}, index_t{64},
                                         index_t{110}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{77})),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "s" +
             std::to_string(std::get<1>(info.param));
    });

// ---- scalar-generic suite: the invariants at both widths -----------------
// Width-independent algebra: anything that holds for the fp64 kernels must
// hold for their float instantiations at float tolerances.

template <typename T>
class TypedProps : public ::testing::Test {};
using Scalars = ::testing::Types<double, float>;
TYPED_TEST_SUITE(TypedProps, Scalars);

TYPED_TEST(TypedProps, MatmulAssociativeAndIdentityNeutral) {
  using T = TypeParam;
  const index_t n = 31;
  util::Rng rng(71);
  BasicMatrix<T> a = fsi::testing::random_matrix_t<T>(n, n, rng);
  BasicMatrix<T> b = fsi::testing::random_matrix_t<T>(n, n, rng);
  BasicMatrix<T> c = fsi::testing::random_matrix_t<T>(n, n, rng);
  fsi::testing::expect_close(matmul(matmul(a, b), c), matmul(a, matmul(b, c)),
                             fsi::testing::Tol<T>::tight, "typed (AB)C");
  fsi::testing::expect_close(matmul(a, BasicMatrix<T>::identity(n)), a, 1e-12,
                             "typed A I = A");
}

TYPED_TEST(TypedProps, TransposeReversesProducts) {
  using T = TypeParam;
  const index_t n = 23;
  util::Rng rng(72);
  BasicMatrix<T> a = fsi::testing::random_matrix_t<T>(n, n, rng);
  BasicMatrix<T> b = fsi::testing::random_matrix_t<T>(n, n, rng);
  BasicMatrix<T> ab_t = transposed(matmul(a, b));
  BasicMatrix<T> bt_at(n, n);
  gemm(Trans::Yes, Trans::Yes, T(1), b, a, T(0), bt_at);
  fsi::testing::expect_close(ab_t, bt_at, fsi::testing::Tol<T>::tight,
                             "typed (AB)^T");
}

TYPED_TEST(TypedProps, InverseOfInverseIsOriginal) {
  using T = TypeParam;
  const index_t n = 29;
  util::Rng rng(73);
  BasicMatrix<T> a = fsi::testing::random_dd_matrix_t<T>(n, rng);
  fsi::testing::expect_close(inverse(inverse(a)), a,
                             fsi::testing::Tol<T>::loose, "typed (A^-1)^-1");
}

TYPED_TEST(TypedProps, NormInequalitiesHold) {
  using T = TypeParam;
  const index_t n = 27;
  util::Rng rng(74);
  BasicMatrix<T> a = fsi::testing::random_matrix_t<T>(n, n, rng);
  const double fro = frobenius_norm(a);
  const double one = one_norm(a);
  const double inf = inf_norm(a);
  const double mx = max_abs(a);
  EXPECT_LE(mx, fro + 1e-15);
  EXPECT_LE(fro, std::sqrt(double(n)) * std::max(one, inf) + 1e-6);
  EXPECT_GE(one, mx);
  EXPECT_GE(inf, mx);
  EXPECT_TRUE(all_finite(a));
}

TYPED_TEST(TypedProps, QPreservesFrobeniusNorm) {
  using T = TypeParam;
  const index_t n = 21;
  util::Rng rng(75);
  BasicMatrix<T> a = fsi::testing::random_matrix_t<T>(n + 5, n, rng);
  BasicQrFactorization<T> qr(std::move(a));
  BasicMatrix<T> c = fsi::testing::random_matrix_t<T>(n + 5, 3, rng);
  const double before = frobenius_norm(c);
  qr.apply_q(Side::Left, Trans::Yes, c);
  EXPECT_NEAR(frobenius_norm(c), before,
              fsi::testing::Tol<T>::tight * before);
}

}  // namespace
