/// Tests for the mini-MPI runtime: point-to-point semantics, collectives,
/// barrier ordering, exception propagation, and the Edison memory model.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "fsi/mpi/edison_model.hpp"
#include "fsi/mpi/minimpi.hpp"

namespace {

using namespace fsi;

TEST(MiniMpi, RankAndSize) {
  std::atomic<int> sum{0};
  mpi::run(4, [&](mpi::Communicator& comm) {
    EXPECT_EQ(comm.size(), 4);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 4);
    sum += comm.rank();
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3);
}

TEST(MiniMpi, SendRecvDeliversInOrder) {
  mpi::run(2, [](mpi::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, /*tag=*/7, {1.0, 2.0});
      comm.send(1, /*tag=*/7, {3.0});
    } else {
      auto first = comm.recv(0, 7);
      auto second = comm.recv(0, 7);
      ASSERT_EQ(first.size(), 2u);
      EXPECT_EQ(first[0], 1.0);
      ASSERT_EQ(second.size(), 1u);
      EXPECT_EQ(second[0], 3.0);
    }
  });
}

TEST(MiniMpi, TagsSeparateStreams) {
  mpi::run(2, [](mpi::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, {10.0});
      comm.send(1, 2, {20.0});
    } else {
      // Receive in the opposite order of sending: tags must match.
      auto t2 = comm.recv(0, 2);
      auto t1 = comm.recv(0, 1);
      EXPECT_EQ(t2[0], 20.0);
      EXPECT_EQ(t1[0], 10.0);
    }
  });
}

TEST(MiniMpi, BcastFromEveryRoot) {
  for (int root = 0; root < 3; ++root) {
    mpi::run(3, [root](mpi::Communicator& comm) {
      std::vector<double> data;
      if (comm.rank() == root) data = {double(root), 42.0};
      comm.bcast(data, root);
      ASSERT_EQ(data.size(), 2u);
      EXPECT_EQ(data[0], double(root));
      EXPECT_EQ(data[1], 42.0);
    });
  }
}

TEST(MiniMpi, ScatterDistributesChunks) {
  mpi::run(4, [](mpi::Communicator& comm) {
    std::vector<double> send;
    if (comm.rank() == 2) {  // non-zero root
      for (int i = 0; i < 12; ++i) send.push_back(double(i));
    }
    auto chunk = comm.scatter(send, 3, /*root=*/2);
    ASSERT_EQ(chunk.size(), 3u);
    EXPECT_EQ(chunk[0], double(3 * comm.rank()));
    EXPECT_EQ(chunk[2], double(3 * comm.rank() + 2));
  });
}

TEST(MiniMpi, ReduceSumsContributions) {
  mpi::run(5, [](mpi::Communicator& comm) {
    std::vector<double> local = {double(comm.rank()), 1.0};
    auto total = comm.reduce_sum(local, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(total.size(), 2u);
      EXPECT_EQ(total[0], 0 + 1 + 2 + 3 + 4);
      EXPECT_EQ(total[1], 5.0);
    } else {
      EXPECT_TRUE(total.empty());
    }
  });
}

TEST(MiniMpi, AllreduceGivesEveryRankTheSum) {
  mpi::run(4, [](mpi::Communicator& comm) {
    std::vector<double> local = {std::pow(2.0, comm.rank())};
    auto total = comm.allreduce_sum(local);
    ASSERT_EQ(total.size(), 1u);
    EXPECT_EQ(total[0], 1 + 2 + 4 + 8);
  });
}

TEST(MiniMpi, GatherConcatenatesByRank) {
  mpi::run(3, [](mpi::Communicator& comm) {
    std::vector<double> local = {double(comm.rank() * 10),
                                 double(comm.rank() * 10 + 1)};
    auto all = comm.gather(local, 1);
    if (comm.rank() == 1) {
      ASSERT_EQ(all.size(), 6u);
      EXPECT_EQ(all[0], 0.0);
      EXPECT_EQ(all[2], 10.0);
      EXPECT_EQ(all[5], 21.0);
    }
  });
}

TEST(MiniMpi, RepeatedCollectivesDoNotInterfere) {
  mpi::run(3, [](mpi::Communicator& comm) {
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<double> local = {double(comm.rank() + iter)};
      auto total = comm.allreduce_sum(local);
      EXPECT_EQ(total[0], 3.0 * iter + 3.0);
      comm.barrier();
    }
  });
}

TEST(MiniMpi, ExceptionsPropagateToCaller) {
  EXPECT_THROW(mpi::run(2,
                        [](mpi::Communicator& comm) {
                          if (comm.rank() == 1)
                            throw std::runtime_error("rank 1 failed");
                          comm.barrier();  // must not deadlock
                        }),
               std::runtime_error);
}

TEST(MiniMpi, InvalidArgumentsThrow) {
  EXPECT_THROW(mpi::run(0, [](mpi::Communicator&) {}), util::CheckError);
  EXPECT_THROW(mpi::run(2,
                        [](mpi::Communicator& comm) {
                          if (comm.rank() == 0) comm.send(5, 0, {});
                          // other rank exits immediately
                        }),
               util::CheckError);
}

TEST(EdisonModel, MatchesPaperMemoryNumbers) {
  // Paper: selected inversion for (N, L, c) = (576, 100, 10) needs ~2.65 GB.
  const std::size_t bytes =
      mpi::fsi_rank_bytes(576, 100, 10, pcyclic::Pattern::Columns);
  const double gb = double(bytes) / (1024.0 * 1024 * 1024);
  EXPECT_GT(gb, 2.6);
  EXPECT_LT(gb, 3.6);  // selected inversion plus working set

  // Paper: 12 ranks/socket (24/node) at N=576 exceed the node memory; the
  // hybrid configs (12 ranks x 2 threads, ...) fit.
  EXPECT_FALSE(mpi::config_fits(24, bytes));
  EXPECT_TRUE(mpi::config_fits(12, bytes));

  // N = 400 fits even in pure-MPI mode (the paper's fastest config).
  const std::size_t bytes400 =
      mpi::fsi_rank_bytes(400, 100, 10, pcyclic::Pattern::Columns);
  EXPECT_TRUE(mpi::config_fits(24, bytes400));
}

TEST(EdisonModel, DiagonalPatternIsTiny) {
  const std::size_t diag =
      mpi::fsi_rank_bytes(576, 100, 10, pcyclic::Pattern::Diagonal);
  const std::size_t cols =
      mpi::fsi_rank_bytes(576, 100, 10, pcyclic::Pattern::Columns);
  EXPECT_LT(diag, cols / 2);
}

}  // namespace
