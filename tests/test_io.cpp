/// Tests for the binary persistence layer: round trips, corruption and
/// type-confusion detection.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "fsi/dense/norms.hpp"
#include "fsi/io/binary_io.hpp"
#include "fsi/selinv/fsi.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using dense::index_t;
using dense::Matrix;
using fsi::testing::expect_close;

/// Unique temp path per test; removed on destruction.
struct TempFile {
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + "fsi_io_" + name + ".bin") {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(BinaryIo, MatrixRoundTrip) {
  TempFile tmp("matrix");
  util::Rng rng(71);
  Matrix m = fsi::testing::random_matrix(17, 9, rng);
  io::save_matrix(tmp.path, m);
  Matrix back = io::load_matrix(tmp.path);
  expect_close(back, m, 0.0, "matrix round trip must be exact");
}

TEST(BinaryIo, StridedViewIsCompacted) {
  TempFile tmp("view");
  util::Rng rng(72);
  Matrix host = fsi::testing::random_matrix(20, 20, rng);
  io::save_matrix(tmp.path, host.block(3, 4, 7, 6));
  Matrix back = io::load_matrix(tmp.path);
  ASSERT_EQ(back.rows(), 7);
  ASSERT_EQ(back.cols(), 6);
  expect_close(back, Matrix::copy_of(host.block(3, 4, 7, 6)), 0.0, "view");
}

TEST(BinaryIo, PCyclicRoundTrip) {
  TempFile tmp("pcyclic");
  util::Rng rng(73);
  pcyclic::PCyclicMatrix m = pcyclic::PCyclicMatrix::random(5, 7, rng);
  io::save_pcyclic(tmp.path, m);
  pcyclic::PCyclicMatrix back = io::load_pcyclic(tmp.path);
  ASSERT_EQ(back.block_size(), 5);
  ASSERT_EQ(back.num_blocks(), 7);
  for (index_t i = 0; i < 7; ++i)
    expect_close(Matrix::copy_of(back.b(i)), Matrix::copy_of(m.b(i)), 0.0,
                 "p-cyclic block");
}

TEST(BinaryIo, FieldRoundTrip) {
  TempFile tmp("field");
  util::Rng rng(74);
  qmc::HsField f(6, 9, rng);
  io::save_field(tmp.path, f);
  qmc::HsField back = io::load_field(tmp.path);
  for (index_t l = 0; l < 6; ++l)
    for (index_t i = 0; i < 9; ++i) EXPECT_EQ(back.at(l, i), f.at(l, i));
}

TEST(BinaryIo, MeasurementsRoundTrip) {
  TempFile tmp("meas");
  qmc::Measurements m(4, 3);
  m.add_sample(1.0);
  m.add_density(0.4, 0.6);
  m.add_af_structure_factor(1.25);
  m.add_spxx(2, 1, -0.5);
  io::save_measurements(tmp.path, m);
  qmc::Measurements back = io::load_measurements(tmp.path);
  EXPECT_DOUBLE_EQ(back.density(), m.density());
  EXPECT_DOUBLE_EQ(back.af_structure_factor(), 1.25);
  EXPECT_DOUBLE_EQ(back.spxx(2, 1), -0.5);
}

TEST(BinaryIo, SelectedInversionRoundTrip) {
  TempFile tmp("selinv");
  util::Rng rng(75);
  pcyclic::PCyclicMatrix m = pcyclic::PCyclicMatrix::random(4, 8, rng);
  selinv::FsiOptions opts;
  opts.c = 4;
  opts.q = 2;
  opts.pattern = pcyclic::Pattern::Columns;
  auto s = selinv::fsi(m, opts, rng);

  io::save_selected_inversion(tmp.path, s);
  auto back = io::load_selected_inversion(tmp.path);
  EXPECT_EQ(back.pattern(), s.pattern());
  EXPECT_EQ(back.selection().q, 2);
  ASSERT_EQ(back.size(), s.size());
  for (const auto& [k, col] : s.keys())
    expect_close(back.at(k, col), s.at(k, col), 0.0, "selected block");
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(io::load_matrix("/nonexistent/fsi_no_such_file.bin"),
               util::CheckError);
}

TEST(BinaryIo, TypeConfusionDetected) {
  TempFile tmp("confusion");
  util::Rng rng(76);
  Matrix m = fsi::testing::random_matrix(3, 3, rng);
  io::save_matrix(tmp.path, m);
  EXPECT_THROW(io::load_pcyclic(tmp.path), util::CheckError);
  EXPECT_THROW(io::load_field(tmp.path), util::CheckError);
}

TEST(BinaryIo, CorruptMagicDetected) {
  TempFile tmp("magic");
  {
    std::ofstream out(tmp.path, std::ios::binary);
    out << "NOTFSI_GARBAGE_____";
  }
  EXPECT_THROW(io::load_matrix(tmp.path), util::CheckError);
}

TEST(BinaryIo, TruncationDetected) {
  TempFile tmp("trunc");
  util::Rng rng(77);
  Matrix m = fsi::testing::random_matrix(30, 30, rng);
  io::save_matrix(tmp.path, m);
  // Truncate the file to half its size.
  std::ifstream in(tmp.path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(tmp.path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  EXPECT_THROW(io::load_matrix(tmp.path), util::CheckError);
}

}  // namespace
