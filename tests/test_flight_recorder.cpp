/// Tests for the crash flight recorder: ring recording and wrap semantics,
/// span integration with FSI_TRACE off, dump writing (parsed back with the
/// shared JSON checker), and the full end-to-end crash flow — the
/// deliberately-crashing helper dies of SIGSEGV, its handler writes
/// crash-<pid>.fsi.json, and fsi_postmortem renders the dump into a summary
/// plus a chrome://tracing timeline.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "fsi/obs/flight.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/obs/trace.hpp"
#include "json_checker.hpp"

namespace {

namespace fl = fsi::obs::flight;
namespace fs = std::filesystem;

struct FlightFixture : ::testing::Test {
  void SetUp() override {
    fl::set_enabled(true);
    fl::clear();
  }
  void TearDown() override {
    fl::set_enabled(true);
    fl::clear();
  }
};

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

bool any_record_named(const std::vector<std::pair<int, fl::Record>>& snap,
                      const char* name) {
  for (const auto& [tid, rec] : snap)
    if (std::string(rec.name) == name) return true;
  return false;
}

TEST_F(FlightFixture, RecordedSpansAppearInSnapshot) {
  fl::record("flight.test_a", 100, 50, 42, 0);
  fl::record("flight.test_b", 200, 25, 0, 1);
  const auto snap = fl::snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_STREQ(snap[0].second.name, "flight.test_a");
  EXPECT_EQ(snap[0].second.t0_ns, 100);
  EXPECT_EQ(snap[0].second.dur_ns, 50);
  EXPECT_EQ(snap[0].second.trace_id, 42u);
  EXPECT_STREQ(snap[1].second.name, "flight.test_b");
  EXPECT_EQ(snap[1].second.omp_tid, 1);
}

TEST_F(FlightFixture, RingWrapsKeepingTheMostRecentRecords) {
  const int pushes = fl::kRingCapacity + 10;
  for (int i = 0; i < pushes; ++i)
    fl::record(i == pushes - 1 ? "flight.newest" : "flight.bulk", i, 1, 0, 0);
  const auto snap = fl::snapshot();
  EXPECT_EQ(snap.size(), static_cast<std::size_t>(fl::kRingCapacity));
  EXPECT_TRUE(any_record_named(snap, "flight.newest"));
  // Oldest surviving record is push #10 — wraps dropped exactly the front.
  EXPECT_EQ(snap.front().second.t0_ns, 10);
  EXPECT_GE(fl::recorded(), static_cast<std::uint64_t>(pushes));
}

TEST_F(FlightFixture, SpansFeedTheRecorderWithTracingOff) {
  fsi::obs::set_enabled(false);  // the whole point: flight works without it
  { FSI_OBS_SPAN("flight.span_integration"); }
  EXPECT_TRUE(any_record_named(fl::snapshot(), "flight.span_integration"));
}

TEST_F(FlightFixture, DisabledRecorderDropsRecords) {
  fl::set_enabled(false);
  fl::record("flight.ignored", 1, 1, 0, 0);
  { FSI_OBS_SPAN("flight.span_ignored"); }
  EXPECT_TRUE(fl::snapshot().empty());
}

TEST_F(FlightFixture, WriteDumpProducesAParseableDocument) {
  fl::record("flight.dumped", 1000, 2000, 99, 3);
  fsi::obs::metrics::add(fsi::obs::metrics::Counter::KernelCalls, 5);
  const std::string path = ::testing::TempDir() + "fsi_flight_dump.json";
  ASSERT_TRUE(fl::write_dump("TEST", path.c_str()));

  const std::string doc = slurp(path);
  std::remove(path.c_str());
  ASSERT_FALSE(doc.empty());
  // Trailing newline, then a parseable object with the expected sections.
  ASSERT_EQ(doc.back(), '\n');
  fsi::testing::JsonChecker checker(doc.substr(0, doc.size() - 1));
  ASSERT_TRUE(checker.parse()) << doc;
  EXPECT_EQ(checker.strings_for("signal").count("TEST"), 1u);
  EXPECT_EQ(checker.strings_for("name").count("flight.dumped"), 1u);
  EXPECT_NE(doc.find("\"fsi_crash_dump\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"build\""), std::string::npos);
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"git_sha\""), std::string::npos);
}

TEST_F(FlightFixture, WriteDumpToUnwritablePathFails) {
  EXPECT_FALSE(fl::write_dump("TEST", "/nonexistent-dir/x/dump.json"));
}

#if defined(FSI_CRASH_HELPER) && defined(FSI_POSTMORTEM)

/// End-to-end: helper SIGSEGVs -> handler writes the dump -> fsi_postmortem
/// summarises it and emits a chrome://tracing timeline.
TEST(CrashFlow, SegvProducesDumpAndPostmortemRendersIt) {
  const std::string dir = ::testing::TempDir() + "fsi_crash_flow/";
  std::error_code ec;
  fs::remove_all(dir, ec);
  ASSERT_TRUE(fs::create_directories(dir));

  const std::string cmd = "FSI_CRASH_DIR=" + dir + " " + FSI_CRASH_HELPER +
                          " --signal segv --spans 32 > " + dir +
                          "helper.out 2>&1";
  const int rc = std::system(cmd.c_str());
  // The helper must die of the signal, not exit normally.
  ASSERT_TRUE(WIFSIGNALED(rc) || (WIFEXITED(rc) && WEXITSTATUS(rc) != 0));

  std::string dump;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("crash-", 0) == 0 &&
        name.find(".fsi.json") != std::string::npos)
      dump = entry.path().string();
  }
  ASSERT_FALSE(dump.empty()) << "no crash dump written in " << dir;

  const std::string doc = slurp(dump);
  ASSERT_FALSE(doc.empty());
  fsi::testing::JsonChecker checker(doc.substr(0, doc.size() - 1));
  ASSERT_TRUE(checker.parse()) << doc;
  EXPECT_EQ(checker.strings_for("signal").count("SIGSEGV"), 1u);
  EXPECT_EQ(checker.strings_for("name").count("helper.compute"), 1u);
  EXPECT_EQ(checker.strings_for("name").count("helper.final_span"), 1u);

  // fsi_postmortem renders the dump and writes a valid trace timeline.
  const std::string trace = dir + "final.trace.json";
  const std::string pm_cmd = std::string(FSI_POSTMORTEM) + " " + dump +
                             " --trace " + trace + " --records 5 > " + dir +
                             "pm.out 2>&1";
  const int pm_rc = std::system(pm_cmd.c_str());
  ASSERT_TRUE(WIFEXITED(pm_rc) && WEXITSTATUS(pm_rc) == 0)
      << slurp(dir + "pm.out");

  const std::string summary = slurp(dir + "pm.out");
  EXPECT_NE(summary.find("SIGSEGV"), std::string::npos) << summary;
  EXPECT_NE(summary.find("helper.final_span"), std::string::npos) << summary;

  const std::string timeline = slurp(trace);
  ASSERT_FALSE(timeline.empty());
  fsi::testing::JsonChecker trace_checker(timeline);
  ASSERT_TRUE(trace_checker.parse()) << timeline;
  EXPECT_NE(timeline.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(trace_checker.strings_for("ph").count("X"), 1u);
  EXPECT_EQ(trace_checker.strings_for("name").count("helper.final_span"), 1u);

  // A non-dump input is rejected with a nonzero exit.
  const int bad_rc = std::system(
      (std::string(FSI_POSTMORTEM) + " " + trace + " > /dev/null 2>&1")
          .c_str());
  EXPECT_TRUE(WIFEXITED(bad_rc) && WEXITSTATUS(bad_rc) != 0);

  fs::remove_all(dir, ec);
}

#endif  // FSI_CRASH_HELPER && FSI_POSTMORTEM

}  // namespace
