/// Unit tests for the matrix exponential (kinetic propagator substrate).

#include <gtest/gtest.h>

#include <cmath>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/expm.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/dense/norms.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::dense;
using fsi::testing::expect_close;
using fsi::testing::random_matrix;

TEST(Expm, ZeroMatrixGivesIdentity) {
  Matrix a(5, 5);
  expect_close(expm(a), Matrix::identity(5), 1e-15, "e^0 = I");
}

TEST(Expm, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = -2.0;
  a(2, 2) = 0.5;
  Matrix e = expm(a);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-13);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-13);
  EXPECT_NEAR(e(2, 2), std::exp(0.5), 1e-13);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, NilpotentMatrixMatchesTruncatedSeries) {
  // For strictly upper triangular (nilpotent) N: e^N = I + N + N^2/2.
  Matrix a(3, 3);
  a(0, 1) = 2.0;
  a(1, 2) = 3.0;
  Matrix e = expm(a);
  EXPECT_NEAR(e(0, 1), 2.0, 1e-13);
  EXPECT_NEAR(e(1, 2), 3.0, 1e-13);
  EXPECT_NEAR(e(0, 2), 3.0, 1e-13);  // N^2/2 term: 2*3/2
  EXPECT_NEAR(e(0, 0), 1.0, 1e-13);
}

TEST(Expm, InverseIsExpOfNegative) {
  util::Rng rng(31);
  Matrix a = random_matrix(20, 20, rng);
  Matrix e = expm(a);
  scal(-1.0, a);
  Matrix einv = expm(a);
  expect_close(matmul(e, einv), Matrix::identity(20), 1e-11,
               "e^A e^-A = I");
}

TEST(Expm, SquaringProperty) {
  // e^{2A} = (e^A)^2 — exercises the scaling/squaring branch with a norm
  // large enough to force s > 0.
  util::Rng rng(32);
  Matrix a = random_matrix(16, 16, rng);
  scal(3.0, a);  // one-norm ~ 24 > theta13
  Matrix e1 = expm(a);
  Matrix a2 = a;
  scal(2.0, a2);
  Matrix e2 = expm(a2);
  expect_close(e2, matmul(e1, e1), 1e-9, "e^{2A} = (e^A)^2");
}

TEST(Expm, SymmetricKineticMatrixPropagator) {
  // e^{t dtau K} for a 1D 4-site periodic chain; compare against the
  // analytic eigendecomposition: eigenvalues 2 cos(2 pi k / n).
  const index_t n = 4;
  Matrix k(n, n);
  for (index_t i = 0; i < n; ++i) {
    k(i, (i + 1) % n) += 1.0;
    k(i, (i + n - 1) % n) += 1.0;
  }
  const double tdtau = 0.125;
  Matrix kd = k;
  scal(tdtau, kd);
  Matrix e = expm(kd);

  // Analytic: E(i,j) = (1/n) sum_q e^{tdtau * 2 cos(2 pi q / n)} cos(2 pi q (i-j)/n)
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double v = 0.0;
      for (index_t q = 0; q < n; ++q) {
        const double lam = 2.0 * std::cos(2.0 * M_PI * q / n);
        v += std::exp(tdtau * lam) * std::cos(2.0 * M_PI * q * (i - j) / n);
      }
      v /= n;
      EXPECT_NEAR(e(i, j), v, 1e-12);
    }
  }
}

TEST(Expm, NonSquareThrows) {
  EXPECT_THROW(expm(Matrix(2, 3)), util::CheckError);
}

}  // namespace
