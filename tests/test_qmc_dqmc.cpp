/// Integration tests for the full DQMC driver (Alg. 4) and the parallel
/// multi-Green's-function application (Alg. 3).

#include <gtest/gtest.h>

#include <cmath>

#include "fsi/qmc/dqmc.hpp"
#include "fsi/qmc/multi_gf.hpp"

namespace {

using namespace fsi;
using namespace fsi::qmc;

TEST(DefaultClusterSize, PicksDivisorNearSqrt) {
  EXPECT_EQ(default_cluster_size(100), 10);
  EXPECT_EQ(default_cluster_size(64), 8);
  EXPECT_EQ(default_cluster_size(12), 3);  // sqrt(12) ~ 3.46 -> 3 is closest
  EXPECT_EQ(default_cluster_size(1), 1);
  const index_t c = default_cluster_size(36);
  EXPECT_EQ(36 % c, 0);
  EXPECT_EQ(c, 6);
}

DqmcResult small_run(GreensEngine engine, std::uint64_t seed = 42,
                     index_t warm = 4, index_t meas = 6) {
  HubbardParams p;
  p.t = 1.0;
  p.u = 2.0;
  p.beta = 1.0;
  p.l = 8;
  HubbardModel model(Lattice::rectangle(3, 2), p);
  DqmcOptions opt;
  opt.warmup_sweeps = warm;
  opt.measurement_sweeps = meas;
  opt.cluster_size = 4;
  opt.engine = engine;
  opt.seed = seed;
  return run_dqmc(model, opt);
}

TEST(Dqmc, RunsAndProducesSaneObservables) {
  DqmcResult r = small_run(GreensEngine::Fsi);
  EXPECT_EQ(r.measurements.samples(), 6.0);
  // Half-filled repulsive Hubbard: sign-problem-free.
  EXPECT_DOUBLE_EQ(r.measurements.avg_sign(), 1.0);
  EXPECT_GT(r.acceptance_rate, 0.05);
  EXPECT_LT(r.acceptance_rate, 0.95);
  // Densities near half filling (statistical, generous tolerance).
  EXPECT_NEAR(r.measurements.density(), 1.0, 0.2);
  // Repulsion suppresses double occupancy below the uncorrelated 1/4.
  EXPECT_LT(r.measurements.double_occupancy(), 0.30);
  EXPECT_GT(r.measurements.double_occupancy(), 0.05);
  // Local moment between uncorrelated (0.5) and fully localised (1.0).
  EXPECT_GT(r.measurements.local_moment(), 0.4);
  EXPECT_LT(r.measurements.local_moment(), 1.0);
  EXPECT_LT(r.max_drift, 1e-6);
  EXPECT_GT(r.timings.total_seconds, 0.0);
}

TEST(Dqmc, EnginesAgreeOnTheSameStream) {
  // FSI and MKL-style engines differ only in parallelisation; with the same
  // seed they must produce the same Markov chain and (near-)identical
  // measurements.
  DqmcResult fsi_run = small_run(GreensEngine::Fsi);
  DqmcResult mkl_run = small_run(GreensEngine::MklStyle);
  EXPECT_EQ(fsi_run.measurements.samples(), mkl_run.measurements.samples());
  EXPECT_NEAR(fsi_run.acceptance_rate, mkl_run.acceptance_rate, 1e-12);
  EXPECT_NEAR(fsi_run.measurements.density(), mkl_run.measurements.density(),
              1e-8);
  EXPECT_NEAR(fsi_run.measurements.double_occupancy(),
              mkl_run.measurements.double_occupancy(), 1e-8);
  EXPECT_NEAR(fsi_run.measurements.spxx(1, 0), mkl_run.measurements.spxx(1, 0),
              1e-8);
}

TEST(Dqmc, DeterministicForFixedSeed) {
  DqmcResult a = small_run(GreensEngine::Fsi, 77);
  DqmcResult b = small_run(GreensEngine::Fsi, 77);
  EXPECT_DOUBLE_EQ(a.measurements.density(), b.measurements.density());
  EXPECT_DOUBLE_EQ(a.acceptance_rate, b.acceptance_rate);
  DqmcResult c = small_run(GreensEngine::Fsi, 78);
  EXPECT_NE(a.measurements.density(), c.measurements.density());
}

TEST(Dqmc, SingleSiteAtomicLimitIsExact) {
  // N = 1, K = 0: no Trotter error, so DQMC must reproduce the atomic
  // limit <n_up n_dn> = e^{-beta U / 4} / (2 e^{-beta U/4} + 2 e^{beta U/4})
  // within Monte Carlo error.
  HubbardParams p;
  p.t = 1.0;  // irrelevant: single site has no neighbours
  p.u = 4.0;
  p.beta = 2.0;
  p.l = 8;
  HubbardModel model(Lattice::chain(1), p);
  DqmcOptions opt;
  opt.warmup_sweeps = 200;
  opt.measurement_sweeps = 2000;
  opt.cluster_size = 4;
  opt.measure_time_dependent = false;
  opt.seed = 7;
  DqmcResult r = run_dqmc(model, opt);

  const double w_single = std::exp(p.beta * p.u / 4.0);
  const double w_other = std::exp(-p.beta * p.u / 4.0);
  const double docc_exact = w_other / (2.0 * w_other + 2.0 * w_single);
  EXPECT_NEAR(r.measurements.double_occupancy(), docc_exact, 0.02);
  EXPECT_NEAR(r.measurements.density(), 1.0, 0.05);
}

TEST(Dqmc, TimeDependentToggleControlsSpxx) {
  HubbardParams p;
  p.l = 4;
  HubbardModel model(Lattice::chain(2), p);
  DqmcOptions opt;
  opt.warmup_sweeps = 1;
  opt.measurement_sweeps = 2;
  opt.cluster_size = 2;
  opt.measure_time_dependent = false;
  DqmcResult r = run_dqmc(model, opt);
  EXPECT_DOUBLE_EQ(r.measurements.spxx(1, 0), 0.0);  // never accumulated
  opt.measure_time_dependent = true;
  DqmcResult r2 = run_dqmc(model, opt);
  EXPECT_NE(r2.measurements.spxx(1, 0), 0.0);
}

TEST(Dqmc, InvalidClusterSizeThrows) {
  HubbardParams p;
  p.l = 8;
  HubbardModel model(Lattice::chain(2), p);
  DqmcOptions opt;
  opt.cluster_size = 3;  // does not divide 8
  EXPECT_THROW(run_dqmc(model, opt), util::CheckError);
}

// ---------------------------------------------------------------------------

TEST(MultiGf, RankCountDoesNotChangeTheResult) {
  HubbardParams p;
  p.l = 6;
  p.u = 2.0;
  HubbardModel model(Lattice::chain(3), p);
  MultiGfOptions opt;
  opt.num_matrices = 4;
  opt.cluster_size = 2;
  opt.seed = 11;

  opt.num_ranks = 1;
  MultiGfResult serial = run_parallel_fsi(model, opt);
  opt.num_ranks = 4;
  MultiGfResult parallel = run_parallel_fsi(model, opt);

  EXPECT_DOUBLE_EQ(serial.global.samples(), 4.0);
  EXPECT_DOUBLE_EQ(parallel.global.samples(), 4.0);
  // Same root-generated fields and per-task q draws; the scheduler merge is
  // task-ordered, so the results are in fact bit-identical (test_sched
  // asserts that) — here the physics-level agreement is what matters.
  EXPECT_NEAR(serial.global.density(), parallel.global.density(), 1e-8);
  EXPECT_NEAR(serial.global.double_occupancy(),
              parallel.global.double_occupancy(), 1e-8);
  EXPECT_GT(parallel.flops, 0u);
  EXPECT_GT(parallel.gflops(), 0.0);
}

TEST(MultiGf, IndivisibleWorkSucceeds) {
  // The scheduler places individual tasks, so the batch size no longer has
  // to divide the rank count (the old static split threw here).
  HubbardParams p;
  p.l = 4;
  HubbardModel model(Lattice::chain(2), p);
  MultiGfOptions opt;
  opt.num_matrices = 3;
  opt.num_ranks = 2;
  const MultiGfResult r = run_parallel_fsi(model, opt);
  EXPECT_DOUBLE_EQ(r.global.samples(), 3.0);
  EXPECT_EQ(r.sched.tasks, 3u);
  EXPECT_EQ(r.sched.workers, 2);
}

}  // namespace
