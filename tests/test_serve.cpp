// End-to-end tests of the fsi::serve daemon with the real inversion engine:
// results that travelled client -> socket -> admission queue -> coalesced
// batch -> qmc::run_fsi_batch -> socket -> client must be bit-identical to
// an in-process run of the same fields — the serve path may move work
// across processes, but never changes a single bit of the physics.
//
// These tests run the OpenMP-backed engine, so they are excluded from the
// ThreadSanitizer CI job (which runs test_serve_protocol instead).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "fsi/qmc/multi_gf.hpp"
#include "fsi/serve/client.hpp"
#include "fsi/serve/server.hpp"
#include "fsi/serve/shard.hpp"
#include "fsi/util/check.hpp"

namespace {

using namespace fsi;
using namespace fsi::serve;

std::string test_socket_path(const char* tag) {
  return "unix:/tmp/fsi_serve_e2e_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

InvertRequest make_request(std::uint64_t seed, std::uint32_t lx = 4,
                           std::uint32_t l = 8, bool heavy = true) {
  InvertRequest r;
  r.lx = lx;
  r.ly = 1;
  r.l = l;
  r.c = 0;  // default divisor of L near sqrt(L)
  r.q = -1; // derived from the seed — same rule as the reference below
  r.seed = seed;
  r.time_dependent = heavy;
  r.field = random_field(r.lx, r.ly, r.l, seed);
  return r;
}

/// The in-process ground truth: the same field, wrap offset and cluster
/// size through the same batch engine, as a batch of one.  Per-task results
/// are independent of batch composition (each task owns its sub-graph and
/// accumulates serially), so this is the exact reference even for responses
/// that were served from a coalesced multi-request batch.
std::vector<double> reference(const InvertRequest& req) {
  const qmc::Lattice lat =
      req.ly == 1 ? qmc::Lattice::chain(static_cast<qmc::index_t>(req.lx))
                  : qmc::Lattice::rectangle(static_cast<qmc::index_t>(req.lx),
                                            static_cast<qmc::index_t>(req.ly));
  qmc::HubbardParams params;
  params.t = req.t;
  params.u = req.u;
  params.beta = req.beta;
  params.l = static_cast<qmc::index_t>(req.l);
  const qmc::HubbardModel model(lat, params);

  const qmc::index_t c = effective_cluster(req);
  std::vector<qmc::FsiBatchTask> tasks;
  tasks.push_back(qmc::FsiBatchTask{
      qmc::HsField::deserialize(static_cast<qmc::index_t>(req.l),
                                model.num_sites(), req.field.data(),
                                req.field.size()),
      resolve_q(req, c), req.time_dependent});
  qmc::FsiBatchOptions opts;
  opts.cluster_size = c;
  return qmc::run_fsi_batch(model, tasks, opts).front().serialize();
}

void expect_bit_identical(const InvertRequest& req,
                          const InvertResponse& resp) {
  ASSERT_EQ(resp.status, Status::Ok) << resp.message;
  const std::vector<double> expected = reference(req);
  ASSERT_EQ(resp.measurements.size(), expected.size());
  EXPECT_EQ(std::memcmp(resp.measurements.data(), expected.data(),
                        expected.size() * sizeof(double)),
            0)
      << "serve-path measurements are not bit-identical to the in-process "
         "selected inversion";
}

TEST(ServeE2E, SingleRequestBitIdentical) {
  ServerOptions options;
  options.endpoint = Endpoint::parse(test_socket_path("single"));
  Server server(std::move(options));
  server.start();

  Client client(server.endpoint());
  const InvertRequest req = make_request(11);
  InvertRequest sent = req;
  const InvertResponse resp = client.request(std::move(sent));
  expect_bit_identical(req, resp);
  EXPECT_EQ(resp.l, req.l);
  EXPECT_GT(resp.dmax, 0u);
  server.stop();
}

TEST(ServeE2E, CoalescedPipelinedRequestsBitIdentical) {
  ServerOptions options;
  options.endpoint = Endpoint::parse(test_socket_path("coalesce"));
  options.batch_window_us = 200000;  // generous: force the burst to coalesce
  options.max_batch = 8;
  Server server(std::move(options));
  server.start();

  Client client(server.endpoint());
  std::vector<InvertRequest> requests;
  std::vector<std::future<InvertResponse>> futures;
  for (std::uint64_t s = 0; s < 4; ++s) {
    requests.push_back(make_request(100 + s));
    futures.push_back(client.submit(requests.back()));
  }
  std::uint32_t max_batch_size = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const InvertResponse resp = futures[i].get();
    expect_bit_identical(requests[i], resp);
    max_batch_size = std::max(max_batch_size, resp.batch_size);
  }
  server.stop();
  // The burst must actually have shared batches — the whole point of the
  // batching layer (the window is far longer than the decode gap).
  EXPECT_GE(max_batch_size, 2u);
  EXPECT_LT(server.stats().batches, 4u);
}

TEST(ServeE2E, ConcurrentClientsCoalesceAndStayBitIdentical) {
  ServerOptions options;
  options.endpoint = Endpoint::parse(test_socket_path("multi"));
  options.batch_window_us = 200000;
  options.max_batch = 8;
  Server server(std::move(options));
  server.start();
  const Endpoint ep = server.endpoint();

  constexpr int kClients = 3;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client(ep);
        const InvertRequest req =
            make_request(static_cast<std::uint64_t>(200 + c));
        InvertRequest sent = req;
        const InvertResponse resp = client.request(std::move(sent));
        if (resp.status != Status::Ok) {
          failures[static_cast<std::size_t>(c)] =
              "status " + std::string(status_name(resp.status));
          return;
        }
        const std::vector<double> expected = reference(req);
        if (expected.size() != resp.measurements.size() ||
            std::memcmp(expected.data(), resp.measurements.data(),
                        expected.size() * sizeof(double)) != 0) {
          failures[static_cast<std::size_t>(c)] = "not bit-identical";
        }
      } catch (const std::exception& e) {
        failures[static_cast<std::size_t>(c)] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c)
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], "") << "client " << c;
  server.stop();
  EXPECT_EQ(server.stats().served_ok, static_cast<std::uint64_t>(kClients));
}

TEST(ServeE2E, MixedShapesSplitIntoSeparateBatches) {
  ServerOptions options;
  options.endpoint = Endpoint::parse(test_socket_path("mixed"));
  options.batch_window_us = 50000;
  Server server(std::move(options));
  server.start();

  Client client(server.endpoint());
  const InvertRequest small = make_request(31, /*lx=*/4, /*l=*/8);
  const InvertRequest large = make_request(32, /*lx=*/6, /*l=*/12);
  auto f_small = client.submit(small);
  auto f_large = client.submit(large);
  const InvertResponse r_small = f_small.get();
  const InvertResponse r_large = f_large.get();
  expect_bit_identical(small, r_small);
  expect_bit_identical(large, r_large);
  // Different (N, L) never share a batch.
  EXPECT_EQ(r_small.batch_size, 1u);
  EXPECT_EQ(r_large.batch_size, 1u);
  server.stop();
  EXPECT_EQ(server.stats().batches, 2u);
}

TEST(ServeE2E, EqualTimeOnlyRequestBitIdentical) {
  ServerOptions options;
  options.endpoint = Endpoint::parse(test_socket_path("equal_time"));
  Server server(std::move(options));
  server.start();

  Client client(server.endpoint());
  const InvertRequest req = make_request(41, 4, 8, /*heavy=*/false);
  InvertRequest sent = req;
  const InvertResponse resp = client.request(std::move(sent));
  expect_bit_identical(req, resp);
  server.stop();
}

TEST(ServeE2E, ExplicitClusterAndOffsetBitIdentical) {
  ServerOptions options;
  options.endpoint = Endpoint::parse(test_socket_path("explicit"));
  Server server(std::move(options));
  server.start();

  Client client(server.endpoint());
  InvertRequest req = make_request(51, 4, 8);
  req.c = 4;
  req.q = 3;
  InvertRequest sent = req;
  const InvertResponse resp = client.request(std::move(sent));
  expect_bit_identical(req, resp);
  EXPECT_EQ(resp.q_used, 3);
  server.stop();
}

TEST(ServeE2E, TwoReplicasSharePortAndStayBitIdentical) {
  // Two Server instances on one TCP port via SO_REUSEPORT — the fsi_serve
  // --replicas topology.  Requests routed through a ShardedClient against
  // the shared port must produce bit-identical physics regardless of which
  // replica's queue/batcher served them.
  ServerOptions options;
  options.endpoint = Endpoint::parse("tcp:127.0.0.1:0");
  options.reuse_port = true;
  options.replicas = 2;
  Server first(options);
  first.start();
  options.endpoint = first.endpoint();  // resolved port; sibling re-binds it
  Server second(options);
  second.start();
  ASSERT_EQ(second.endpoint().port, first.endpoint().port);

  // Distinct connections (kernel spreads them across the two accept loops;
  // either placement is correct) with distinct model shapes.
  std::vector<Endpoint> eps = {first.endpoint(), second.endpoint()};
  ShardedClient sharded(eps);
  EXPECT_EQ(sharded.replicas(), 2u);
  const InvertRequest a = make_request(71, /*lx=*/4, /*l=*/8);
  const InvertRequest b = make_request(72, /*lx=*/6, /*l=*/12);
  // The rendezvous route is a pure key function: both requests route
  // deterministically, and same-key requests agree.
  EXPECT_EQ(sharded.route(a), sharded.route(a));
  expect_bit_identical(a, sharded.request(a));
  expect_bit_identical(b, sharded.request(b));

  const std::uint64_t total_ok =
      first.stats().served_ok + second.stats().served_ok;
  second.stop();
  first.stop();
  EXPECT_EQ(total_ok, 2u);
}

TEST(ServeE2E, ReusePortOnUnixEndpointThrows) {
  ServerOptions options;
  options.endpoint = Endpoint::parse(test_socket_path("reuse_unix"));
  options.reuse_port = true;
  Server server(std::move(options));
  EXPECT_THROW(server.start(), util::CheckError);
}

TEST(ServeE2E, AdaptiveBypassRecoversThroughputAndReportsState) {
  // Closed-loop single client: every request waits for its response, so a
  // long fixed window charges every dispatch the full straggler wait for
  // nothing.  The adaptive policy must measure that, halve the window, and
  // engage bypass; the stats snapshot must expose the transition.
  ServerOptions options;
  options.endpoint = Endpoint::parse(test_socket_path("adaptive"));
  options.batch_window_us = 30000;  // deliberately bad for closed-loop
  options.adaptive.bypass_after = 3;
  Server server(std::move(options));
  server.start();

  Client client(server.endpoint());
  const InvertRequest req = make_request(81);
  for (int i = 0; i < 8; ++i) {
    InvertRequest sent = req;
    expect_bit_identical(req, client.request(std::move(sent)));
  }
  const StatsResponse s = server.stats_snapshot();
  EXPECT_TRUE(s.adaptive_enabled);
  EXPECT_GE(s.bypass_enters, 1u);
  EXPECT_TRUE(s.policy_bypass);
  EXPECT_EQ(s.policy_window_us, 0);
  EXPECT_EQ(s.policy_max_batch, 1u);
  // The measured-speedup estimate has samples (its direction depends on
  // real engine timing noise; the deterministic trace tests pin it down).
  EXPECT_GT(s.policy_speedup, 0.0);
  server.stop();
}

TEST(ServeE2E, ClientQuotaShedsPipelinedFlood) {
  // A stub-free flood through the real engine would be slow; instead use a
  // tiny quota so a pipelined burst trips it deterministically even when
  // the batcher drains fast: quota 1, burst of 8 from one connection.
  ServerOptions options;
  options.endpoint = Endpoint::parse(test_socket_path("quota"));
  options.client_quota = 1;
  options.batch_window_us = 0;  // drain as fast as possible
  Server server(std::move(options));
  server.start();

  Client client(server.endpoint());
  std::vector<InvertRequest> requests;
  std::vector<std::future<InvertResponse>> futures;
  for (std::uint64_t i = 0; i < 8; ++i) {
    requests.push_back(make_request(90 + i));
    futures.push_back(client.submit(requests.back()));
  }
  std::uint64_t ok = 0, shed = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const InvertResponse r = futures[i].get();
    if (r.status == Status::Ok) {
      expect_bit_identical(requests[i], r);
      ++ok;
    } else {
      ASSERT_EQ(r.status, Status::RetryAfter) << r.message;
      EXPECT_NE(r.message.find("quota"), std::string::npos);
      ++shed;
    }
  }
  server.stop();
  EXPECT_GE(ok, 1u);
  EXPECT_EQ(ok + shed, 8u);
  EXPECT_EQ(server.stats().rejected_quota, shed);
}

TEST(ServeE2E, TcpEndpointRoundTrip) {
  ServerOptions options;
  options.endpoint = Endpoint::parse("tcp:127.0.0.1:0");  // ephemeral port
  Server server(std::move(options));
  server.start();
  ASSERT_GT(server.endpoint().port, 0);

  Client client(server.endpoint());
  const InvertRequest req = make_request(61);
  InvertRequest sent = req;
  expect_bit_identical(req, client.request(std::move(sent)));
  server.stop();
}

}  // namespace
