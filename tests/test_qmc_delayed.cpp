/// Tests for the delayed-update mode of the equal-time Green engine: the
/// blocked GEMM application must be numerically equivalent to immediate
/// rank-1 updates for the whole sweep protocol.

#include <gtest/gtest.h>

#include "fsi/dense/norms.hpp"
#include "fsi/qmc/dqmc.hpp"
#include "fsi/qmc/greens.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::qmc;
using fsi::testing::expect_close;

HubbardModel make_model(index_t nx, index_t l) {
  HubbardParams p;
  p.u = 3.0;
  p.beta = 1.5;
  p.l = l;
  return HubbardModel(Lattice::chain(nx), p);
}

TEST(DelayedUpdates, RatiosMatchImmediateModeThroughAFullSweep) {
  const index_t n = 8, l = 6;
  HubbardModel model = make_model(n, l);
  util::Rng rng(921);
  HsField h_imm(l, n, rng);
  HsField h_del = h_imm;

  EqualTimeGreens imm(model, h_imm, Spin::Up, 3, 100, /*delay=*/0);
  EqualTimeGreens del(model, h_del, Spin::Up, 3, 100, /*delay=*/4);
  EXPECT_EQ(del.delay_depth(), 4);

  // Deterministic pseudo-sweep: same acceptance rule on both engines.
  for (index_t s = 0; s < l; ++s) {
    for (index_t i = 0; i < n; ++i) {
      const double a1 = imm.flip_alpha(i);
      const double a2 = del.flip_alpha(i);
      ASSERT_DOUBLE_EQ(a1, a2);
      const double r1 = imm.flip_ratio(i, a1);
      const double r2 = del.flip_ratio(i, a2);
      ASSERT_NEAR(r1, r2, 1e-10) << "slice " << s << " site " << i;
      if (r1 > 0.8) {
        imm.apply_flip(i, a1, r1);
        del.apply_flip(i, a2, r2);
        h_imm.flip(imm.slice(), i);
        h_del.flip(del.slice(), i);
      }
    }
    imm.advance();
    del.advance();
    expect_close(del.g(), imm.g(), 1e-9, "after advance");
  }
}

TEST(DelayedUpdates, FlushHappensAtDepth) {
  const index_t n = 6, l = 4;
  HubbardModel model = make_model(n, l);
  util::Rng rng(922);
  HsField h(l, n, rng);
  EqualTimeGreens eng(model, h, Spin::Down, 2, 100, /*delay=*/3);

  for (index_t i = 0; i < 3; ++i) {
    const double a = eng.flip_alpha(i);
    const double r = eng.flip_ratio(i, a);
    eng.apply_flip(i, a, r);
    h.flip(eng.slice(), i);
  }
  // Third update triggered the flush.
  EXPECT_EQ(eng.pending_updates(), 0);

  const double a = eng.flip_alpha(3);
  eng.apply_flip(3, a, eng.flip_ratio(3, a));
  h.flip(eng.slice(), 3);
  EXPECT_EQ(eng.pending_updates(), 1);

  // g() flushes on demand and matches a fresh recompute.
  EqualTimeGreens fresh(model, h, Spin::Down, 2, 100, 0);
  expect_close(eng.g(), fresh.g(), 1e-10, "flush-on-read");
  EXPECT_EQ(eng.pending_updates(), 0);
}

TEST(DelayedUpdates, FullDqmcRunsIdenticallyWithDelay) {
  // The production sweep must produce the same Markov chain with and
  // without delay (ratios are identical up to rounding; acceptance uses
  // the same RNG stream).
  HubbardParams p;
  p.u = 2.0;
  p.l = 8;
  HubbardModel model(Lattice::rectangle(3, 2), p);

  auto run_with = [&](index_t delay) {
    util::Rng rng(77);
    HsField field(p.l, model.num_sites(), rng);
    EqualTimeGreens g_up(model, field, Spin::Up, 4, 8, delay);
    EqualTimeGreens g_dn(model, field, Spin::Down, 4, 8, delay);
    double sign = 1.0;
    index_t acc = 0;
    for (int sweep = 0; sweep < 4; ++sweep)
      acc += metropolis_sweep(model, field, g_up, g_dn, rng, sign);
    return std::make_pair(acc, Matrix::copy_of(g_up.g().view()));
  };

  auto [acc0, g0] = run_with(0);
  auto [acc8, g8] = run_with(8);
  EXPECT_EQ(acc0, acc8);
  expect_close(g8, g0, 1e-8, "delayed vs immediate DQMC");
}

TEST(DelayedUpdates, InvalidDepthRejected) {
  const index_t n = 4, l = 4;
  HubbardModel model = make_model(n, l);
  util::Rng rng(923);
  HsField h(l, n, rng);
  EXPECT_THROW(EqualTimeGreens(model, h, Spin::Up, 2, 8, -1), util::CheckError);
}

}  // namespace

namespace {

TEST(RecomputeMethods, QrAccumulateAndPartialBsofiAgree) {
  using namespace fsi;
  using namespace fsi::qmc;
  HubbardParams p;
  p.u = 3.0;
  p.beta = 2.0;
  p.l = 12;
  HubbardModel model(Lattice::chain(5), p);
  util::Rng rng(931);
  HsField h(12, 5, rng);
  for (Spin spin : {Spin::Up, Spin::Down}) {
    EqualTimeGreens qr(model, h, spin, 4, 8, 0, RecomputeMethod::QrAccumulate);
    EqualTimeGreens pb(model, h, spin, 4, 8, 0, RecomputeMethod::PartialBsofi);
    fsi::testing::expect_close(pb.g(), qr.g(), 1e-10, "recompute methods");
    // And after wrapping to a few other slices.
    for (int s = 0; s < 5; ++s) {
      qr.advance();
      pb.advance();
    }
    qr.recompute();
    pb.recompute();
    fsi::testing::expect_close(pb.g(), qr.g(), 1e-9, "after advance");
  }
}

}  // namespace
