/// Tests for obs::log: level parsing and gating, logfmt and jsonl record
/// shape (the jsonl side validated with the shared JSON checker), field
/// rendering and escaping, per-site rate limiting with suppressed-count
/// drainage, and trace-id correlation.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "fsi/obs/log.hpp"
#include "fsi/obs/trace.hpp"
#include "json_checker.hpp"

namespace {

namespace lg = fsi::obs::log;

/// Capture sink: every test logs into a tmpfile and reads it back.
struct LogFixture : ::testing::Test {
  void SetUp() override {
    sink_ = std::tmpfile();
    ASSERT_NE(sink_, nullptr);
    lg::set_stream(sink_);
    lg::set_level(lg::Level::Debug);
    lg::set_format(lg::Format::Logfmt);
    lg::set_site_limit(50);
  }
  void TearDown() override {
    lg::set_stream(nullptr);
    lg::set_level(lg::Level::Info);
    lg::set_format(lg::Format::Logfmt);
    lg::set_site_limit(50);
    fsi::obs::set_active_trace(0);
    std::fclose(sink_);
  }

  std::string captured() {
    std::fflush(sink_);
    std::rewind(sink_);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, sink_)) > 0) out.append(buf, n);
    return out;
  }

  std::FILE* sink_ = nullptr;
};

TEST(LogLevelParse, AcceptedSpellings) {
  lg::Level lv = lg::Level::Off;
  EXPECT_TRUE(lg::parse_level("debug", lv));
  EXPECT_EQ(lv, lg::Level::Debug);
  EXPECT_TRUE(lg::parse_level("WARN", lv));
  EXPECT_EQ(lv, lg::Level::Warn);
  EXPECT_TRUE(lg::parse_level("warning", lv));
  EXPECT_EQ(lv, lg::Level::Warn);
  EXPECT_TRUE(lg::parse_level("none", lv));
  EXPECT_EQ(lv, lg::Level::Off);
  EXPECT_FALSE(lg::parse_level("verbose", lv));
  EXPECT_FALSE(lg::parse_level("", lv));
  EXPECT_FALSE(lg::parse_level(nullptr, lv));
  EXPECT_EQ(lv, lg::Level::Off);  // untouched on failure
}

TEST_F(LogFixture, LevelGateSuppressesBelowThreshold) {
  lg::set_level(lg::Level::Warn);
  EXPECT_FALSE(lg::should(lg::Level::Debug));
  EXPECT_FALSE(lg::should(lg::Level::Info));
  EXPECT_TRUE(lg::should(lg::Level::Warn));
  EXPECT_TRUE(lg::should(lg::Level::Error));

  FSI_LOG_INFO("test.dropped", {"k", 1});
  FSI_LOG_WARN("test.kept", {"k", 2});
  const std::string out = captured();
  EXPECT_EQ(out.find("test.dropped"), std::string::npos);
  EXPECT_NE(out.find("test.kept"), std::string::npos);
}

TEST_F(LogFixture, OffSilencesEverything) {
  lg::set_level(lg::Level::Off);
  FSI_LOG_ERROR("test.silenced");
  EXPECT_TRUE(captured().empty());
}

TEST_F(LogFixture, LogfmtShape) {
  FSI_LOG_WARN("serve.shed", {"reason", "admission queue full"},
               {"depth", 64}, {"ratio", 0.5}, {"ok", true});
  const std::string out = captured();
  EXPECT_NE(out.find("ts="), std::string::npos);
  EXPECT_NE(out.find(" level=warn"), std::string::npos);
  EXPECT_NE(out.find(" event=serve.shed"), std::string::npos);
  // Strings with spaces are quoted; scalars are bare.
  EXPECT_NE(out.find("reason=\"admission queue full\""), std::string::npos);
  EXPECT_NE(out.find(" depth=64"), std::string::npos);
  EXPECT_NE(out.find(" ratio=0.5"), std::string::npos);
  EXPECT_NE(out.find(" ok=true"), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

TEST_F(LogFixture, LogfmtBareTokenNeedsNoQuotes) {
  FSI_LOG_INFO("test.bare", {"endpoint", "unix:fsi.sock"});
  const std::string out = captured();
  EXPECT_NE(out.find("endpoint=unix:fsi.sock"), std::string::npos);
  EXPECT_EQ(out.find("endpoint=\""), std::string::npos);
}

TEST_F(LogFixture, JsonlRecordsParse) {
  lg::set_format(lg::Format::Jsonl);
  FSI_LOG_ERROR("serve.fatal", {"reason", "bind: \"addr\" in use\n"},
                {"attempt", 3});
  const std::string out = captured();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
  fsi::testing::JsonChecker checker(out.substr(0, out.size() - 1));
  ASSERT_TRUE(checker.parse()) << out;
  EXPECT_EQ(checker.strings_for("level").count("error"), 1u);
  EXPECT_EQ(checker.strings_for("event").count("serve.fatal"), 1u);
  EXPECT_EQ(checker.numbers_for("attempt").count("3"), 1u);
}

TEST_F(LogFixture, NonFiniteDoublesStayParseableInJson) {
  lg::set_format(lg::Format::Jsonl);
  FSI_LOG_INFO("test.nonfinite", {"x", 1.0 / 0.0}, {"y", 0.0 / 0.0});
  const std::string out = captured();
  fsi::testing::JsonChecker checker(out.substr(0, out.size() - 1));
  EXPECT_TRUE(checker.parse()) << out;
}

TEST_F(LogFixture, TraceIdTagsEveryLineWhileActive) {
  fsi::obs::set_active_trace(7777);
  FSI_LOG_INFO("test.correlated");
  fsi::obs::set_active_trace(0);
  FSI_LOG_INFO("test.uncorrelated");
  const std::string out = captured();
  EXPECT_NE(out.find("event=test.correlated trace=7777"), std::string::npos)
      << out;
  const std::size_t second = out.find("test.uncorrelated");
  ASSERT_NE(second, std::string::npos);
  EXPECT_EQ(out.find("trace=", second), std::string::npos);
}

TEST_F(LogFixture, SiteRateLimitAdmitsUpToLimit) {
  lg::set_site_limit(3);
  lg::Site site;
  EXPECT_TRUE(lg::admit(site));
  EXPECT_TRUE(lg::admit(site));
  EXPECT_TRUE(lg::admit(site));
  EXPECT_FALSE(lg::admit(site));
  EXPECT_FALSE(lg::admit(site));
  EXPECT_EQ(site.suppressed.load(), 2u);

  // Force the 1 s window to expire: the next admit resets the budget.
  // (now_ns() counts from process start, so rewind relative to it.)
  site.window_start_ns.store(fsi::obs::now_ns() - 2'000'000'000);
  EXPECT_TRUE(lg::admit(site));
}

TEST_F(LogFixture, FloodedMacroSiteEmitsOnlyTheWindowBudget) {
  lg::set_site_limit(1);
  const std::uint64_t before = lg::lines_written();
  for (int i = 0; i < 5; ++i)
    FSI_LOG_WARN("test.flood", {"i", i});  // one macro site, one window
  EXPECT_EQ(lg::lines_written(), before + 1);
}

TEST_F(LogFixture, SuppressedFieldAppearsAfterWindowReset) {
  lg::set_site_limit(1);
  static lg::Site site;  // hand-rolled site so the window can be rewound
  site.window_start_ns.store(0);
  site.emitted_in_window.store(0);
  site.suppressed.store(0);
  ASSERT_TRUE(lg::admit(site));
  lg::write(lg::Level::Warn, "test.drain", &site, {{"n", 1}});
  ASSERT_FALSE(lg::admit(site));
  ASSERT_FALSE(lg::admit(site));
  site.window_start_ns.store(fsi::obs::now_ns() - 2'000'000'000);  // expire
  ASSERT_TRUE(lg::admit(site));
  lg::write(lg::Level::Warn, "test.drain", &site, {{"n", 2}});
  const std::string out = captured();
  EXPECT_NE(out.find("suppressed=2"), std::string::npos) << out;
}

TEST_F(LogFixture, SetFileAppendsAndFallsBackToStderr) {
  const std::string path = ::testing::TempDir() + "fsi_log_test.log";
  std::remove(path.c_str());
  ASSERT_TRUE(lg::set_file(path));
  FSI_LOG_INFO("test.to_file", {"k", "v"});
  lg::set_stream(sink_);  // closes the owned file, back to the tmpfile

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[512] = {};
  std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(std::string(buf).find("test.to_file"), std::string::npos);

  EXPECT_FALSE(lg::set_file("/nonexistent-dir/x/y.log"));
}

}  // namespace
