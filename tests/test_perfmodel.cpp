/// Tests for the analytic scaling model (the single-core substitution for
/// the paper's multi-core/multi-node measurements).

#include <gtest/gtest.h>

#include "fsi/selinv/perfmodel.hpp"
#include "fsi/util/check.hpp"

namespace {

using namespace fsi;
using namespace fsi::selinv;

TEST(Amdahl, KnownValues) {
  EXPECT_DOUBLE_EQ(amdahl_speedup(0.0, 16), 1.0);
  EXPECT_DOUBLE_EQ(amdahl_speedup(1.0, 4), 4.0);
  EXPECT_NEAR(amdahl_speedup(0.5, 12), 1.0 / (0.5 + 0.5 / 12.0), 1e-14);
  EXPECT_THROW(amdahl_speedup(0.5, 0), util::CheckError);
  EXPECT_THROW(amdahl_speedup(1.5, 2), util::CheckError);
}

TEST(MklFraction, MonotoneInBlockSize) {
  EXPECT_LT(mkl_parallel_fraction(64), mkl_parallel_fraction(256));
  EXPECT_LT(mkl_parallel_fraction(256), mkl_parallel_fraction(1024));
  EXPECT_DOUBLE_EQ(mkl_parallel_fraction(32), mkl_parallel_fraction(64));
  EXPECT_DOUBLE_EQ(mkl_parallel_fraction(2048), mkl_parallel_fraction(1024));
}

TEST(Calibration, ReproducesPaperEndpointsAtTwelveThreads) {
  // Paper Fig. 8 bottom at (N, L, c) = (576, 100, 10): FSI/OpenMP close to
  // ideal (the paper's Fig. 11 quotes 6.9x for the full simulation, the
  // selected-inversion-only curve is steeper), MKL ~2x.
  StageTimes serial{1.0, 2.0, 3.0};  // CLS 1s, BSOFI 2s, WRP 3s (ratios typical)
  const double fsi12 = serial.total() / fsi_openmp_time(serial, 12, 10);
  const double mkl12 = serial.total() / mkl_style_time(serial, 12, 576);
  EXPECT_GT(fsi12, 6.0);
  EXPECT_LT(fsi12, 12.0);
  EXPECT_GT(mkl12, 1.5);
  EXPECT_LT(mkl12, 2.5);
  EXPECT_GT(fsi12, 3.0 * mkl12);  // the paper's "almost doubles" is conservative
}

TEST(FsiOpenMpTime, MonotoneAndBounded) {
  StageTimes serial{1.0, 1.0, 1.0};
  double prev = fsi_openmp_time(serial, 1, 10);
  EXPECT_NEAR(prev, serial.total(), 1e-12);
  for (int p = 2; p <= 24; ++p) {
    const double t = fsi_openmp_time(serial, p, 10);
    EXPECT_LT(t, prev * 1.001);  // never slower (beyond tiny overhead)
    EXPECT_GT(t, serial.total() / p * 0.9);  // never super-linear
    prev = t;
  }
}

TEST(FsiOpenMpTime, ClsSaturatesAtBClusters) {
  StageTimes cls_only{10.0, 0.0, 0.0};
  const double t4 = fsi_openmp_time(cls_only, 4, 4);
  const double t8 = fsi_openmp_time(cls_only, 8, 4);
  // CLS cannot go below serial/b even with more threads (only overhead grows).
  EXPECT_NEAR(t4, 10.0 / 4 * (1 + 0.005 * 3), 1e-9);
  EXPECT_GT(t8, 10.0 / 4);
}

TEST(HybridRate, ScalesWithNodesAndDegradesWithThreads) {
  StageTimes serial{1.0, 2.0, 3.0};
  const double r1 = hybrid_rate(1e9, 1, 24, 1, serial, 10);
  const double r100 = hybrid_rate(1e9, 100, 24, 1, serial, 10);
  EXPECT_NEAR(r100 / r1, 100.0, 1e-9);  // MPI over matrices: perfect

  // Pure MPI (24x1) beats hybrid (2x12) at equal core count — the paper's
  // Fig. 9 ordering when memory permits.
  const double pure = hybrid_rate(1e9, 1, 24, 1, serial, 10);
  const double hybrid = hybrid_rate(1e9, 1, 2, 12, serial, 10);
  EXPECT_GT(pure, hybrid);
  EXPECT_GT(hybrid, 0.5 * pure);  // but not catastrophically slower
}

TEST(HybridRate, InvalidConfigThrows) {
  StageTimes serial{1, 1, 1};
  EXPECT_THROW(hybrid_rate(1e9, 0, 1, 1, serial, 4), util::CheckError);
  EXPECT_THROW(fsi_openmp_time(serial, 2, 0), util::CheckError);
}

}  // namespace
