// Doc-drift guard: the FSI_* environment-variable table in
// docs/parallelism.md must list exactly the variables the sources read.
// The scan covers every env read in src/ and include/ — obs/env.hpp helpers
// (env_flag / env_long / env_double) and raw std::getenv — so adding an env
// var without documenting it (or documenting one that no longer exists)
// fails this test.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  EXPECT_TRUE(in.good()) << "cannot open " << p;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string join(const std::set<std::string>& s) {
  std::string out;
  for (const auto& v : s) {
    if (!out.empty()) out += ", ";
    out += v;
  }
  return out.empty() ? "(none)" : out;
}

TEST(DocsEnvVars, ParallelismTableMatchesSourceReads) {
  const fs::path root = FSI_SOURCE_DIR;

  // --- Documented set: `FSI_*` tokens between the table markers.
  const std::string doc = slurp(root / "docs" / "parallelism.md");
  const std::string begin_marker = "<!-- env-vars:begin -->";
  const std::string end_marker = "<!-- env-vars:end -->";
  const auto begin = doc.find(begin_marker);
  const auto end = doc.find(end_marker);
  ASSERT_NE(begin, std::string::npos) << "missing " << begin_marker;
  ASSERT_NE(end, std::string::npos) << "missing " << end_marker;
  ASSERT_LT(begin, end) << "markers out of order";
  const std::string table = doc.substr(begin, end - begin);

  const std::regex doc_re("`(FSI_[A-Z0-9_]+)`");
  std::set<std::string> documented;
  for (auto it = std::sregex_iterator(table.begin(), table.end(), doc_re);
       it != std::sregex_iterator(); ++it)
    documented.insert((*it)[1].str());
  ASSERT_FALSE(documented.empty()) << "env-var table is empty";

  // --- Used set: string literals fed to an env-read call anywhere in the
  // library sources (tests/ and bench/ excluded: they fabricate variables).
  const std::regex read_re(
      "(?:env_flag|env_long|env_double|getenv)\\s*\\(\\s*\"(FSI_[A-Z0-9_]+)\"");
  std::set<std::string> used;
  for (const char* top : {"src", "include"}) {
    for (const auto& entry : fs::recursive_directory_iterator(root / top)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      const std::string text = slurp(entry.path());
      for (auto it = std::sregex_iterator(text.begin(), text.end(), read_re);
           it != std::sregex_iterator(); ++it)
        used.insert((*it)[1].str());
    }
  }
  ASSERT_FALSE(used.empty()) << "no env reads found — scan broken?";

  std::set<std::string> undocumented, stale;
  for (const auto& v : used)
    if (!documented.count(v)) undocumented.insert(v);
  for (const auto& v : documented)
    if (!used.count(v)) stale.insert(v);

  EXPECT_TRUE(undocumented.empty())
      << "env vars read by the sources but missing from the "
         "docs/parallelism.md table: "
      << join(undocumented);
  EXPECT_TRUE(stale.empty())
      << "env vars documented in docs/parallelism.md but never read by the "
         "sources: "
      << join(stale);
}

}  // namespace
