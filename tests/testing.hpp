#pragma once
/// \file testing.hpp
/// \brief Shared helpers for the FSI test suite.

#include <gtest/gtest.h>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/matrix.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/util/rng.hpp"

namespace fsi::testing {

/// Uniform random matrix with entries in [-1, 1).
inline dense::Matrix random_matrix(dense::index_t m, dense::index_t n,
                                   util::Rng& rng) {
  dense::Matrix a(m, n);
  for (dense::index_t j = 0; j < n; ++j)
    for (dense::index_t i = 0; i < m; ++i) a(i, j) = rng.uniform(-1.0, 1.0);
  return a;
}

/// Random diagonally-dominant matrix (well-conditioned, safe to invert).
inline dense::Matrix random_dd_matrix(dense::index_t n, util::Rng& rng) {
  dense::Matrix a = random_matrix(n, n, rng);
  for (dense::index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

/// Reference three-loop GEMM: C := alpha op(A) op(B) + beta C.
inline void naive_gemm(dense::Trans ta, dense::Trans tb, double alpha,
                       dense::ConstMatrixView a, dense::ConstMatrixView b,
                       double beta, dense::MatrixView c) {
  using dense::index_t;
  const index_t m = c.rows(), n = c.cols();
  const index_t k = (ta == dense::Trans::No) ? a.cols() : a.rows();
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (index_t p = 0; p < k; ++p) {
        const double av = (ta == dense::Trans::No) ? a(i, p) : a(p, i);
        const double bv = (tb == dense::Trans::No) ? b(p, j) : b(j, p);
        s += av * bv;
      }
      c(i, j) = alpha * s + beta * c(i, j);
    }
  }
}

/// EXPECT helper: Frobenius-relative difference below tolerance.
inline void expect_close(dense::ConstMatrixView actual,
                         dense::ConstMatrixView expected, double tol,
                         const char* what = "") {
  ASSERT_EQ(actual.rows(), expected.rows()) << what;
  ASSERT_EQ(actual.cols(), expected.cols()) << what;
  const double err = dense::rel_fro_error(actual, expected);
  EXPECT_LE(err, tol) << what << " rel_fro_error=" << err;
}

/// fp32 overload (rel_fro_error accumulates in double for both widths).
inline void expect_close(dense::ConstMatrixViewF actual,
                         dense::ConstMatrixViewF expected, double tol,
                         const char* what = "") {
  ASSERT_EQ(actual.rows(), expected.rows()) << what;
  ASSERT_EQ(actual.cols(), expected.cols()) << what;
  const double err = dense::rel_fro_error(actual, expected);
  EXPECT_LE(err, tol) << what << " rel_fro_error=" << err;
}

// ---- scalar-typed twins, for the TYPED_TEST suites that pin the
// scalar-generic kernels at both widths ------------------------------------

/// Width-appropriate tolerances: the same ~1e3–1e5 ulp headroom the fp64
/// suites use, scaled to each scalar's epsilon.
template <typename T>
struct Tol;
template <>
struct Tol<double> {
  static constexpr double tight = 1e-11;  ///< one well-behaved kernel
  static constexpr double loose = 1e-9;   ///< factor/solve round trips
};
template <>
struct Tol<float> {
  static constexpr double tight = 1e-4;
  static constexpr double loose = 5e-3;
};

/// Uniform random matrix with entries in [-1, 1), any scalar.
template <typename T>
inline dense::BasicMatrix<T> random_matrix_t(dense::index_t m,
                                             dense::index_t n, util::Rng& rng) {
  dense::BasicMatrix<T> a(m, n);
  for (dense::index_t j = 0; j < n; ++j)
    for (dense::index_t i = 0; i < m; ++i)
      a(i, j) = static_cast<T>(rng.uniform(-1.0, 1.0));
  return a;
}

/// Random diagonally-dominant matrix, any scalar.
template <typename T>
inline dense::BasicMatrix<T> random_dd_matrix_t(dense::index_t n,
                                                util::Rng& rng) {
  dense::BasicMatrix<T> a = random_matrix_t<T>(n, n, rng);
  for (dense::index_t i = 0; i < n; ++i) a(i, i) += static_cast<T>(n);
  return a;
}

/// Reference three-loop GEMM at scalar T (accumulates in T, like the
/// kernel, so the comparison measures ordering error only).
template <typename T>
inline void naive_gemm_t(dense::Trans ta, dense::Trans tb, T alpha,
                         dense::BasicConstMatrixView<T> a,
                         dense::BasicConstMatrixView<T> b, T beta,
                         dense::BasicMatrixView<T> c) {
  using dense::index_t;
  const index_t m = c.rows(), n = c.cols();
  const index_t k = (ta == dense::Trans::No) ? a.cols() : a.rows();
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      T s = T(0);
      for (index_t p = 0; p < k; ++p) {
        const T av = (ta == dense::Trans::No) ? a(i, p) : a(p, i);
        const T bv = (tb == dense::Trans::No) ? b(p, j) : b(j, p);
        s += av * bv;
      }
      c(i, j) = alpha * s + beta * c(i, j);
    }
  }
}

}  // namespace fsi::testing
