#pragma once
/// \file testing.hpp
/// \brief Shared helpers for the FSI test suite.

#include <gtest/gtest.h>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/matrix.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/util/rng.hpp"

namespace fsi::testing {

/// Uniform random matrix with entries in [-1, 1).
inline dense::Matrix random_matrix(dense::index_t m, dense::index_t n,
                                   util::Rng& rng) {
  dense::Matrix a(m, n);
  for (dense::index_t j = 0; j < n; ++j)
    for (dense::index_t i = 0; i < m; ++i) a(i, j) = rng.uniform(-1.0, 1.0);
  return a;
}

/// Random diagonally-dominant matrix (well-conditioned, safe to invert).
inline dense::Matrix random_dd_matrix(dense::index_t n, util::Rng& rng) {
  dense::Matrix a = random_matrix(n, n, rng);
  for (dense::index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

/// Reference three-loop GEMM: C := alpha op(A) op(B) + beta C.
inline void naive_gemm(dense::Trans ta, dense::Trans tb, double alpha,
                       dense::ConstMatrixView a, dense::ConstMatrixView b,
                       double beta, dense::MatrixView c) {
  using dense::index_t;
  const index_t m = c.rows(), n = c.cols();
  const index_t k = (ta == dense::Trans::No) ? a.cols() : a.rows();
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (index_t p = 0; p < k; ++p) {
        const double av = (ta == dense::Trans::No) ? a(i, p) : a(p, i);
        const double bv = (tb == dense::Trans::No) ? b(p, j) : b(j, p);
        s += av * bv;
      }
      c(i, j) = alpha * s + beta * c(i, j);
    }
  }
}

/// EXPECT helper: Frobenius-relative difference below tolerance.
inline void expect_close(dense::ConstMatrixView actual,
                         dense::ConstMatrixView expected, double tol,
                         const char* what = "") {
  ASSERT_EQ(actual.rows(), expected.rows()) << what;
  ASSERT_EQ(actual.cols(), expected.cols()) << what;
  const double err = dense::rel_fro_error(actual, expected);
  EXPECT_LE(err, tol) << what << " rel_fro_error=" << err;
}

}  // namespace fsi::testing
