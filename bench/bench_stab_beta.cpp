/// \file bench_stab_beta.cpp
/// \brief fsi::stab — max attainable beta*L per stabilization strategy.
///
/// Charts how far in beta*L each chain-stabilization strategy carries the
/// equal-time Green's function before the obs::health monitor rejects it:
///
///   naive — the QR-accumulate product path (RecomputeMethod::QrAccumulate).
///           Accurate until the accumulated R's entries overflow double
///           range (~300 decades of scale spread), then goes non-finite and
///           the health gate FAILs on the nonfinite sentinel.
///   udt   — the fsi::stab ASvQRD engine (RecomputeMethod::Udt): scales are
///           kept separated in diag(d) with +-120-decade saturation, so the
///           recurrence never leaves double range at any beta.
///
/// Acceptance per (L, strategy) combines the health monitor's two signals —
/// wrap drift under the FAIL budget and no non-finite G — with a max-abs
/// check against a slice-by-slice long-double reference chain.  The
/// frontier is the largest accepted beta*L; the committed gate holds the
/// UDT frontier at >= 4x the naive one (empirically ~7x at this config:
/// naive dies between L = 768 and 1024, UDT is still at 1e-13 there and
/// within 1e-8 through L >= 1536).
///
///   ./bench_stab_beta [--N 6] [--U 4.0] [--dtau 0.25] [--c 8]

#include "common.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "fsi/qmc/greens.hpp"
#include "fsi/stab/reference.hpp"
#include "fsi/util/fpenv.hpp"

namespace {

using namespace fsi;
using namespace fsi::bench;

/// Max-abs difference, +inf when any entry pair differs non-finitely (a NaN
/// must read as "infinitely wrong", not be masked by std::max).
double max_abs_err(const dense::Matrix& a, const dense::Matrix& b) {
  double m = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) {
      const double d = std::abs(a(i, j) - b(i, j));
      if (!std::isfinite(d)) return std::numeric_limits<double>::infinity();
      m = std::max(m, d);
    }
  return m;
}

struct Outcome {
  double err = std::numeric_limits<double>::infinity();  ///< vs reference
  double drift = 0.0;      ///< engine max wrap drift over the probe advances
  bool accepted = false;   ///< health gate Ok/Warn AND err under FAIL budget
};

/// Drive one strategy at one L: a short EqualTimeGreens probe for the
/// health-monitor signals (two stabilised recomputes' worth of wraps), plus
/// a from-scratch G against the long-double reference.
Outcome run_strategy(const qmc::HubbardModel& model, const qmc::HsField& h,
                     const dense::Matrix& ref, qmc::RecomputeMethod method,
                     index_t c) {
  Outcome out;
  const index_t wrap = 8;
  obs::health::reset();
  try {
    qmc::EqualTimeGreens eng(model, h, qmc::Spin::Up, c, wrap, 0, method);
    for (index_t s = 0; s < 2 * wrap; ++s) eng.advance();
    out.drift = eng.max_drift();
    dense::Matrix g =
        method == qmc::RecomputeMethod::Udt
            ? qmc::stabilized_equal_time_greens(model, h, qmc::Spin::Up, 0, c)
            : qmc::equal_time_greens(model, h, qmc::Spin::Up, 0, c);
    out.err = max_abs_err(g, ref);
  } catch (const std::exception&) {
    // An overflow mid-chain counts as a rejection, same as a FAIL report.
    obs::health::record_nonfinite("bench_stab_beta");
  }
  const bool healthy =
      obs::health::report().overall != obs::health::Status::Fail;
  out.accepted = healthy && out.err <= obs::health::thresholds().drift_fail;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  const index_t n = cli.get_int("N", 6);
  const double u = cli.get_double("U", 4.0);
  const double dtau = cli.get_double("dtau", 0.25);
  const index_t c = cli.get_int("c", 8);
  init_trace(cli);

  obs::BenchTelemetry telemetry("bench_stab_beta");
  telemetry.add_info("N", static_cast<double>(n));
  telemetry.add_info("U", u);
  telemetry.add_info("dtau", dtau);
  telemetry.add_info("c", static_cast<double>(c));

  print_header(
      "fsi::stab — attainable beta*L frontier per stabilization strategy",
      "UDT (ASvQRD) pushes the health-accepted beta*L out by >= 4x over the "
      "naive QR-accumulate chain (Bauer 2020; Jiang et al. FSI paper Sec. V)");

  const std::vector<index_t> ls = {128, 256, 384, 512, 768, 1024, 1536, 2048};
  util::Table table({"L", "beta", "beta*L", "naive err", "naive drift",
                     "naive", "udt err", "udt drift", "udt"});

  double frontier_naive = 0.0, frontier_udt = 0.0;
  // UDT error at the first L past the naive frontier — the beta where the
  // acceptance criterion "naive FAILs, UDT within 1e-8 of the reference"
  // is judged.  (Deeper into the sweep UDT's own error grows too — it is
  // still health-accepted, just no longer at the 1e-8 bar.)
  double udt_err_at_crossover = -1.0;
  for (const index_t l : ls) {
    qmc::HubbardParams p;
    p.t = 1.0;
    p.u = u;
    p.beta = dtau * static_cast<double>(l);
    p.l = l;
    qmc::HubbardModel model(qmc::Lattice::chain(n), p);
    util::Rng rng(7, static_cast<std::uint64_t>(l));
    qmc::HsField h(l, n, rng);

    std::vector<dense::Matrix> bs;
    bs.reserve(static_cast<std::size_t>(l));
    for (index_t t = 0; t < l; ++t)
      bs.push_back(model.b_matrix(h, (1 + t) % l, qmc::Spin::Up));
    const dense::Matrix ref = stab::reference_inverse_one_plus_chain(bs);

    const Outcome naive =
        run_strategy(model, h, ref, qmc::RecomputeMethod::QrAccumulate, c);
    const Outcome udt = run_strategy(model, h, ref, qmc::RecomputeMethod::Udt, c);

    const double beta_l = p.beta * static_cast<double>(l);
    if (naive.accepted) frontier_naive = std::max(frontier_naive, beta_l);
    if (udt.accepted) frontier_udt = std::max(frontier_udt, beta_l);
    if (!naive.accepted && udt_err_at_crossover < 0.0)
      udt_err_at_crossover = udt.err;

    table.add_row({util::Table::num((long long)l), util::Table::num(p.beta, 1),
                   util::Table::sci(beta_l), util::Table::sci(naive.err),
                   util::Table::sci(naive.drift),
                   naive.accepted ? "ok" : "REJECT",
                   util::Table::sci(udt.err), util::Table::sci(udt.drift),
                   udt.accepted ? "ok" : "REJECT"});
  }
  table.print();

  const double ratio =
      frontier_naive > 0.0 ? frontier_udt / frontier_naive
                           : std::numeric_limits<double>::infinity();
  std::printf(
      "\nfrontier (max health-accepted beta*L):  naive = %.3g   udt = %.3g   "
      "ratio = %.2fx\n",
      frontier_naive, frontier_udt, ratio);
  std::printf(
      "UDT max-abs error at the first naive-rejected beta: %.2e "
      "(acceptance bound 1e-8)\n",
      udt_err_at_crossover);

  // Raw frontiers chart the sweep; the CI gate holds the two boolean claims
  // as exact-1.0 indicators (a frontier is a step function of the sweep
  // grid, so gating the raw value with a relative tolerance is meaningless).
  telemetry.add_metric("naive_betaL_frontier", frontier_naive, "beta*L");
  telemetry.add_metric("udt_betaL_frontier", frontier_udt, "beta*L");
  telemetry.add_metric("udt_vs_naive_betaL_ratio", ratio, "ratio");
  telemetry.add_metric("udt_betaL_ge_4x_naive",
                       frontier_udt >= 4.0 * frontier_naive ? 1.0 : 0.0,
                       "bool", /*gate=*/true);
  telemetry.add_metric("udt_err_at_crossover",
                       udt_err_at_crossover >= 0.0 ? udt_err_at_crossover
                                                   : 0.0,
                       "maxabs", /*gate=*/false, /*higher_is_better=*/false);
  telemetry.add_metric(
      "udt_ref_err_ok",
      udt_err_at_crossover >= 0.0 && udt_err_at_crossover <= 1e-8 ? 1.0 : 0.0,
      "bool", /*gate=*/true);

  finish_bench(telemetry);
  return 0;
}
