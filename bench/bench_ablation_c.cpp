/// \file bench_ablation_c.cpp
/// \brief Ablation — the cluster factor c (DESIGN.md Sec. 7).
///
/// "A larger c leads to a greater reduction.  However, the size of c is
///  limited by numerical stability.  A large c results in the loss of
///  precision due to round-off errors.  Usually, c ~ sqrt(L)."
///
/// Sweeps c over the divisors of L and reports the measured accuracy of b
/// block columns against a dense inverse, plus the per-stage flop split —
/// making the accuracy/flops trade-off behind the paper's c ~ sqrt(L)
/// guidance visible.  A hotter Hubbard matrix (larger U, beta) makes the
/// chain products stiffer and the error growth clearer.
///
///   ./bench_ablation_c [--N 48] [--L 64] [--U 6] [--beta 6]

#include "common.hpp"

#include "fsi/util/fpenv.hpp"

#include "fsi/dense/norms.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  using namespace fsi::bench;
  util::Cli cli(argc, argv);
  const index_t n = cli.get_int("N", 48);
  const index_t l = cli.get_int("L", 64);
  const double u = cli.get_double("U", 6.0);
  const double beta = cli.get_double("beta", 6.0);
  init_trace(cli);
  obs::BenchTelemetry telemetry("bench_ablation_c");
  telemetry.add_info("N", static_cast<double>(n));
  telemetry.add_info("L", static_cast<double>(l));
  telemetry.add_info("U", u);
  telemetry.add_info("beta", beta);

  print_header("Ablation — cluster factor c (stability vs reduction)",
               "accuracy degrades as c grows; c ~ sqrt(L) balances flops "
               "and round-off");

  pcyclic::PCyclicMatrix m = make_hubbard(n, l, 2016, u, beta);
  dense::Matrix g = pcyclic::full_inverse_dense(m);
  std::printf("(N, L) = (%d, %d), U = %.1f, beta = %.1f, sqrt(L) = %.1f\n\n",
              n, l, u, beta, std::sqrt(double(l)));

  util::Table t({"c", "b", "max rel err", "CLS Gflop", "BSOFI Gflop",
                 "WRP Gflop", "total Gflop", "time s"});
  double err_at_sqrt = 0.0, best_flops = 0.0;
  index_t c_at_sqrt = 0, c_best_flops = 0;
  for (index_t c = 1; c <= l; ++c) {
    if (l % c != 0) continue;
    StageProfile p = profile_fsi(m, c, pcyclic::Pattern::Columns, 0);

    selinv::FsiOptions opts;
    opts.c = c;
    opts.q = 0;
    opts.pattern = pcyclic::Pattern::Columns;
    util::Rng rng(1);
    auto s = selinv::fsi(m, opts, rng);
    double worst = 0.0;
    for (const auto& [k, col] : s.keys())
      worst = std::max(worst, dense::rel_fro_error(
                                  s.at(k, col), pcyclic::dense_block(g, n, k, col)));

    t.add_row({util::Table::num((long long)c),
               util::Table::num((long long)(l / c)), util::Table::sci(worst),
               util::Table::num(p.flops_cls * 1e-9, 2),
               util::Table::num(p.flops_bsofi * 1e-9, 2),
               util::Table::num(p.flops_wrap * 1e-9, 2),
               util::Table::num(p.total_flops() * 1e-9, 2),
               util::Table::num(p.total_seconds(), 3)});
    if (c_at_sqrt == 0 && static_cast<double>(c) >= std::sqrt(double(l))) {
      c_at_sqrt = c;
      err_at_sqrt = worst;
    }
    if (c_best_flops == 0 || p.total_flops() < best_flops) {
      c_best_flops = c;
      best_flops = static_cast<double>(p.total_flops());
    }
  }
  t.print();
  telemetry.add_info("c_at_sqrt", static_cast<double>(c_at_sqrt));
  telemetry.add_info("c_min_flops", static_cast<double>(c_best_flops));
  telemetry.add_metric("max_rel_err_at_sqrt_c", err_at_sqrt, "rel_err", false,
                       /*higher_is_better=*/false);
  telemetry.add_metric("min_total_gflop", best_flops * 1e-9, "gflop", false,
                       /*higher_is_better=*/false);
  finish_bench(telemetry);
  std::printf(
      "\nshape check: error grows with c (longer unorthogonalised chain\n"
      "products); total flops are minimised near c ~ sqrt(L) where the\n"
      "BSOFI (7 b^2 N^3) and WRP (3 b L N^3) terms balance.\n");
  return 0;
}
