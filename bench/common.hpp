#pragma once
/// \file common.hpp
/// \brief Shared helpers for the figure/table reproduction benches.
///
/// Every bench binary regenerates one table or figure of the paper (see
/// DESIGN.md experiment index) and prints the measured series side by side
/// with the paper's expected shape.  Values derived from the analytic
/// scaling model (this host has a single CPU core — see perfmodel.hpp) are
/// explicitly labelled "modeled".

#include <algorithm>
#include <cstdio>
#include <string>

#include "fsi/dense/blas.hpp"
#include "fsi/obs/health.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/obs/report.hpp"
#include "fsi/obs/telemetry.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/qmc/hubbard.hpp"
#include "fsi/selinv/fsi.hpp"
#include "fsi/selinv/perfmodel.hpp"
#include "fsi/util/cli.hpp"
#include "fsi/util/flops.hpp"
#include "fsi/util/table.hpp"
#include "fsi/util/timer.hpp"

namespace fsi::bench {

using dense::index_t;

/// Random Hubbard matrix with the paper's validation parameters
/// (t, beta, sigma, U) = (1, 1, 1, 2) unless overridden.
inline pcyclic::PCyclicMatrix make_hubbard(index_t n, index_t l,
                                           std::uint64_t seed = 2016,
                                           double u = 2.0, double beta = 1.0,
                                           qmc::Spin spin = qmc::Spin::Up) {
  qmc::HubbardParams p;
  p.t = 1.0;
  p.u = u;
  p.beta = beta;
  p.l = l;
  // A chain lattice of n sites gives the N x N kinetic blocks of Sec. V-A.
  qmc::HubbardModel model(qmc::Lattice::chain(n), p);
  util::Rng rng(seed);
  qmc::HsField field(l, n, rng);
  return model.build_m(field, spin);
}

/// Timed + flop-counted run of one FSI call; a thin view over FsiStats (the
/// field-by-field copying this used to do lives in selinv::fsi now).
struct StageProfile {
  selinv::FsiStats stats;
  selinv::StageTimes seconds;
  std::uint64_t flops_cls = 0, flops_bsofi = 0, flops_wrap = 0;

  StageProfile() = default;
  explicit StageProfile(const selinv::FsiStats& s)
      : stats(s),
        seconds{s.seconds_cls, s.seconds_bsofi, s.seconds_wrap},
        flops_cls(s.flops_cls),
        flops_bsofi(s.flops_bsofi),
        flops_wrap(s.flops_wrap) {}

  double gflops(double s, std::uint64_t f) const {
    return s > 0 ? static_cast<double>(f) / s * 1e-9 : 0.0;
  }
  double total_seconds() const { return seconds.total(); }
  std::uint64_t total_flops() const {
    return flops_cls + flops_bsofi + flops_wrap;
  }
};

inline StageProfile profile_fsi(const pcyclic::PCyclicMatrix& m, index_t c,
                                pcyclic::Pattern pattern, index_t q = 0) {
  selinv::FsiOptions opts;
  opts.c = c;
  opts.q = q;
  opts.pattern = pattern;
  // Committed fig8/fig10 baselines were recorded with the OpenMP-loop
  // pipeline, whose stage seconds are wall-clock deltas; the graph executor
  // reports summed node-busy seconds instead, which would shift every gated
  // per-stage ratio.  Keep the profiling benches pinned to the loop path.
  opts.exec = selinv::FsiOptions::Exec::OmpLoops;
  util::Rng rng(1);
  selinv::FsiStats stats;
  // Pre-factored BlockOps, as in the DQMC production loop: the wrapping
  // stage then counts only the paper's 3(bL - b^2) N^3 move flops.
  pcyclic::BlockOps ops(m);
  (void)selinv::fsi(m, ops, opts, rng, &stats);
  return StageProfile(stats);
}

/// Apply the uniform obs flags every bench accepts:
///   --trace / --no-trace       force span tracing on/off (overrides the
///                              FSI_TRACE environment value either way)
///   --no-health                disable the numerical-health monitor
///   --health-sample N          residual spot-check period (0 = off)
/// Returns whether tracing is on.
inline bool init_trace(const util::Cli& cli) {
  if (cli.has("no-trace"))
    obs::set_enabled(false);
  else if (cli.has("trace"))
    obs::set_enabled(true);
  if (cli.has("no-health")) obs::health::set_enabled(false);
  if (cli.has("health-sample"))
    obs::health::set_sample_every(
        cli.get_int("health-sample", obs::health::sample_every()));
  obs::metrics::set(
      obs::metrics::Gauge::HealthSampleEvery,
      obs::health::enabled() ? obs::health::sample_every() : 0.0);
  return obs::enabled();
}

/// If tracing is on: print the per-span summary and write the
/// chrome://tracing JSON artifact (to $FSI_TRACE_FILE, default
/// "bench/artifacts/<bench_name>.trace.json" — see obs::artifact_dir()).
/// Call once at the end of a bench.
inline void finish_trace(const std::string& bench_name) {
  if (!obs::enabled()) return;
  std::printf("\n[trace] per-span summary:\n%s", obs::summary_str().c_str());
  // Bare basename: write_trace_if_enabled routes it under artifact_dir().
  const std::string path = obs::write_trace_if_enabled(bench_name);
  if (!path.empty())
    std::printf("[trace] chrome://tracing JSON written to %s (open in "
                "chrome://tracing or ui.perfetto.dev)\n", path.c_str());
}

/// End-of-bench epilogue: print the health summary (when the monitor is
/// on), write the schema-versioned BENCH_<name>.json telemetry file and the
/// trace artifacts (both under obs::artifact_dir(): $FSI_BENCH_DIR, default
/// bench/artifacts).  Every bench main calls this exactly once before
/// returning.
inline void finish_bench(const obs::BenchTelemetry& telemetry) {
  if (obs::health::enabled()) {
    std::printf("\n[health] numerical-health summary:\n%s",
                obs::health::report().str().c_str());
  }
  const std::string path = telemetry.write();
  if (!path.empty())
    std::printf("[bench] telemetry written to %s\n", path.c_str());
  else
    std::fprintf(stderr, "[bench] could not write telemetry for %s\n",
                 telemetry.bench_name().c_str());
  finish_trace(telemetry.bench_name());
}

/// Measured DGEMM rate at block size n (the "practical peak" reference of
/// Fig. 8 top).
inline double dgemm_gflops(index_t n, int reps = 0) {
  if (reps <= 0)  // aim for ~60 ms of work so small sizes are not noisy
    reps = std::max<int>(3, static_cast<int>(2e9 / (2.0 * n * n * n)));
  dense::Matrix a(n, n), b(n, n), c(n, n);
  util::Rng rng(5);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      a(i, j) = rng.uniform(-1, 1);
      b(i, j) = rng.uniform(-1, 1);
    }
  dense::gemm(dense::Trans::No, dense::Trans::No, 1.0, a, b, 0.0, c);  // warm
  util::WallTimer t;
  for (int r = 0; r < reps; ++r)
    dense::gemm(dense::Trans::No, dense::Trans::No, 1.0, a, b, 0.0, c);
  return 2.0 * n * n * n * reps / t.seconds() * 1e-9;
}

inline void print_header(const char* figure, const char* claim) {
  std::printf("=====================================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper result: %s\n", claim);
  std::printf("=====================================================================\n");
}

inline void print_host_note() {
  std::printf(
      "[host note] this machine exposes 1 CPU core; multi-thread/multi-node\n"
      "rows marked 'modeled' use the calibrated scaling model of\n"
      "fsi/selinv/perfmodel.hpp (see DESIGN.md, substitutions).\n\n");
}

}  // namespace fsi::bench
