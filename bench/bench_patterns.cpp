/// \file bench_patterns.cpp
/// \brief Paper Sec. II-B table — selected-block counts and memory
/// reduction factors of the four patterns, at the paper's reference shape
/// (N, L, c) = (1000, 100, 10) plus a measured small instance.
///
///   ./bench_patterns [--N 64] [--L 40] [--c 5]

#include "common.hpp"

#include "fsi/util/fpenv.hpp"

#include "fsi/pcyclic/patterns.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  using namespace fsi::bench;
  util::Cli cli(argc, argv);
  init_trace(cli);
  obs::BenchTelemetry telemetry("bench_patterns");

  print_header("Sec. II-B table — selected-inversion patterns",
               "S1: b blocks (cL reduction); S2: b or b-1 (cL); "
               "S3/S4: bL blocks (c); columns need 1/c of full-inverse memory");

  // The paper's reference shape: (N, L) = (1000, 100), c = sqrt(L) = 10.
  {
    pcyclic::Selection sel(100, 10, 3);
    util::Table t({"pattern", "blocks", "reduction factor", "paper"});
    t.add_row({"S1 diagonal",
               util::Table::num((long long)sel.block_count(pcyclic::Pattern::Diagonal)),
               util::Table::num(sel.reduction_factor(pcyclic::Pattern::Diagonal), 0),
               "b=10, cL=1000"});
    t.add_row({"S2 sub-diagonal",
               util::Table::num((long long)sel.block_count(pcyclic::Pattern::SubDiagonal)),
               util::Table::num(sel.reduction_factor(pcyclic::Pattern::SubDiagonal), 0),
               "b=10 (q!=0), cL=1000"});
    t.add_row({"S3 columns",
               util::Table::num((long long)sel.block_count(pcyclic::Pattern::Columns)),
               util::Table::num(sel.reduction_factor(pcyclic::Pattern::Columns), 0),
               "bL=1000, c=10"});
    t.add_row({"S4 rows",
               util::Table::num((long long)sel.block_count(pcyclic::Pattern::Rows)),
               util::Table::num(sel.reduction_factor(pcyclic::Pattern::Rows), 0),
               "bL=1000, c=10"});
    std::printf("paper reference shape (N, L, c) = (1000, 100, 10):\n");
    t.print();
    std::printf("memory saving for block columns: %.0f%% (paper: 90%%)\n\n",
                100.0 * (1.0 - 1.0 / sel.reduction_factor(pcyclic::Pattern::Columns)));
  }

  // A measured instance: actual bytes of computed selected inversions.
  const index_t n = cli.get_int("N", 64);
  const index_t l = cli.get_int("L", 40);
  const index_t c = cli.get_int("c", 5);
  telemetry.add_info("N", static_cast<double>(n));
  telemetry.add_info("L", static_cast<double>(l));
  telemetry.add_info("c", static_cast<double>(c));
  pcyclic::PCyclicMatrix m = make_hubbard(n, l);
  const double full_bytes =
      static_cast<double>(m.dim()) * m.dim() * sizeof(double);

  std::printf("measured instance (N, L, c) = (%d, %d, %d):\n", n, l, c);
  util::Table t({"pattern", "blocks", "measured MB", "full-inverse MB",
                 "measured reduction"});
  util::Rng rng(3);
  for (auto pat : {pcyclic::Pattern::Diagonal, pcyclic::Pattern::SubDiagonal,
                   pcyclic::Pattern::Columns, pcyclic::Pattern::Rows}) {
    selinv::FsiOptions opts;
    opts.c = c;
    opts.q = 2;
    opts.pattern = pat;
    auto s = selinv::fsi(m, opts, rng);
    t.add_row({pcyclic::pattern_name(pat),
               util::Table::num((long long)s.size()),
               util::Table::num(s.bytes() / 1048576.0, 3),
               util::Table::num(full_bytes / 1048576.0, 1),
               util::Table::num(full_bytes / s.bytes(), 0)});
    telemetry.add_metric(std::string("reduction_") + pcyclic::pattern_name(pat),
                         full_bytes / static_cast<double>(s.bytes()), "ratio");
  }
  t.print();
  finish_bench(telemetry);
  return 0;
}
