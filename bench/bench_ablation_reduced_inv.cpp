/// \file bench_ablation_reduced_inv.cpp
/// \brief Ablation — BSOFI vs dense LU for inverting the reduced matrix
/// (DESIGN.md Sec. 7).
///
/// FSI's middle stage could also invert the reduced b-block p-cyclic matrix
/// with a plain dense LU (DGETRF/DGETRI).  BSOFI exploits the p-cyclic
/// structure (7 b^2 N^3 vs 2 (bN)^3 = 2 b^3 N^3 flops) and uses orthogonal
/// transformations.  This bench measures both on the same reduced matrices.
///
///   ./bench_ablation_reduced_inv [--N 96] [--L 64]

#include "common.hpp"

#include "fsi/util/fpenv.hpp"

#include "fsi/dense/norms.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  using namespace fsi::bench;
  util::Cli cli(argc, argv);
  const index_t n = cli.get_int("N", 96);
  const index_t l = cli.get_int("L", 64);
  init_trace(cli);
  obs::BenchTelemetry telemetry("bench_ablation_reduced_inv");
  telemetry.add_info("N", static_cast<double>(n));
  telemetry.add_info("L", static_cast<double>(l));

  print_header("Ablation — reduced-matrix inversion: BSOFI vs dense LU",
               "BSOFI: 7 b^2 N^3 structured flops vs 2 b^3 N^3 dense; "
               "both numerically stable, BSOFI wins for b >~ 4");

  pcyclic::PCyclicMatrix m = make_hubbard(n, l, 2016, 4.0, 4.0);
  util::Table t({"c", "b", "BSOFI s", "BSOFI Gflop", "LU s", "LU Gflop",
                 "LU/BSOFI time", "rel diff"});
  for (index_t c : {index_t{2}, index_t{4}, index_t{8}, index_t{16}}) {
    if (l % c != 0) continue;
    pcyclic::PCyclicMatrix reduced = selinv::cluster(m, c, 0);

    util::flops::Scope f1;
    util::WallTimer w1;
    dense::Matrix g_bsofi = bsofi::invert(reduced);
    const double t_bsofi = w1.seconds();
    const double gf_bsofi = f1.elapsed() * 1e-9;

    util::flops::Scope f2;
    util::WallTimer w2;
    dense::Matrix g_lu = bsofi::invert_dense_lu(reduced);
    const double t_lu = w2.seconds();
    const double gf_lu = f2.elapsed() * 1e-9;

    t.add_row({util::Table::num((long long)c),
               util::Table::num((long long)(l / c)),
               util::Table::num(t_bsofi, 3), util::Table::num(gf_bsofi, 2),
               util::Table::num(t_lu, 3), util::Table::num(gf_lu, 2),
               util::Table::num(t_lu / t_bsofi, 2),
               util::Table::sci(dense::rel_fro_error(g_bsofi, g_lu))});
    telemetry.add_metric("lu_over_bsofi_time_c" + std::to_string(c),
                         t_lu / t_bsofi, "ratio");
    telemetry.add_metric("rel_diff_c" + std::to_string(c),
                         dense::rel_fro_error(g_bsofi, g_lu), "rel_err", false,
                         /*higher_is_better=*/false);
  }
  t.print();
  std::printf(
      "\nshape check: the flop ratio grows like 2b/7, so dense LU falls\n"
      "behind as b = L/c grows; the two inverses agree to rounding.\n");
  finish_bench(telemetry);
  return 0;
}
