/// \file bench_fig9_hybrid.cpp
/// \brief Paper Fig. 9 — hybrid MPI x OpenMP performance for multiple
/// Green's functions on 100 Edison nodes (2400 cores).
///
/// "Pure MPI execution reaches the highest performance, but it is only
///  applicable for block size N = 400.  When N = 576 the memory requirement
///  ... exceeds the available memory capacity ... the hybrid model exploits
///  the full usage of all available CPU cores and overcomes the memory
///  shortage to achieve the highest performance rate of 31 Tflops."
///
/// SUBSTITUTION: the 100-node run cannot execute on one machine, so this
/// bench (a) REPRODUCES the memory-feasibility boundary with the Edison
/// node model (which configs OOM, analytically, matching the paper's
/// 2.65 GB/rank arithmetic), (b) projects the aggregate Tflops for each
/// feasible configuration from a *measured* single-core FSI rate and the
/// scaling model, and (c) actually RUNS Alg. 3 on mini-MPI ranks at a
/// reduced size to demonstrate the scatter/FSI/reduce pipeline end-to-end.
///
///   ./bench_fig9_hybrid [--N 96] [--L 40] [--c 5] [--demo-ranks 4]

#include "common.hpp"

#include "fsi/util/fpenv.hpp"

#include <map>
#include <thread>

#include "fsi/mpi/edison_model.hpp"
#include "fsi/mpi/minimpi.hpp"
#include "fsi/qmc/multi_gf.hpp"
#include "fsi/sched/executor.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  using namespace fsi::bench;
  util::Cli cli(argc, argv);
  init_trace(cli);
  obs::BenchTelemetry telemetry("bench_fig9_hybrid");

  print_header("Fig. 9 — hybrid MPI x OpenMP, 100 nodes x 24 cores",
               "pure MPI fastest when it fits; N >= 576 needs hybrid; "
               "20-31 Tflops across configurations");
  print_host_note();

  // (a) + (b): feasibility and projected rate per (config, N).
  const index_t l_paper = 100, c_paper = 10, b = l_paper / c_paper;
  const int nodes = 100;
  struct Config {
    int ranks_total, threads;
  };
  const Config configs[] = {{200, 12}, {400, 6}, {800, 3}, {1200, 2}, {2400, 1}};

  // Measured single-core rate on a moderate instance, used as the per-core
  // building block of the projection.
  const index_t n_meas = cli.get_int("N", 96);
  const index_t l_meas = cli.get_int("L", 40);
  const index_t c_meas = cli.get_int("c", 5);
  pcyclic::PCyclicMatrix m = make_hubbard(n_meas, l_meas);
  StageProfile prof = profile_fsi(m, c_meas, pcyclic::Pattern::Columns, 2);
  const double core_rate =
      static_cast<double>(prof.total_flops()) / prof.total_seconds();
  // FSI runs at a fixed fraction of the DGEMM rate (Fig. 8 top); project the
  // per-core rate to the paper's block sizes via the measured DGEMM curve.
  const double fsi_efficiency = core_rate / (dgemm_gflops(n_meas) * 1e9);
  std::printf("measured single-core FSI rate (N=%d, L=%d, c=%d): %.1f Gflops "
              "(%.0f%% of DGEMM)\n\n",
              n_meas, l_meas, c_meas, core_rate * 1e-9, 100 * fsi_efficiency);

  const mpi::EdisonNode node;
  std::map<index_t, double> rate_at_n;
  for (index_t n : {400, 576, 784, 1024})
    rate_at_n[n] = dgemm_gflops(n, 2) * 1e9 * fsi_efficiency;

  util::Table t([&] {
    std::vector<std::string> h{"ranks x threads"};
    for (index_t n : {400, 576, 784, 1024}) h.push_back("N=" + std::to_string(n));
    return h;
  }());
  for (const Config& cfg : configs) {
    std::vector<std::string> row{std::to_string(cfg.ranks_total) + " x " +
                                 std::to_string(cfg.threads)};
    for (index_t n : {400, 576, 784, 1024}) {
      const std::size_t bytes =
          mpi::fsi_rank_bytes(n, l_paper, c_paper, pcyclic::Pattern::Columns);
      const int ranks_per_node = cfg.ranks_total / nodes;
      if (!mpi::config_fits(ranks_per_node, bytes, node)) {
        row.push_back("OOM");
        continue;
      }
      const double rate = selinv::hybrid_rate(rate_at_n[n], nodes,
                                              ranks_per_node, cfg.threads,
                                              prof.seconds, b);
      row.push_back(util::Table::num(rate * 1e-12, 1) + " TF");
    }
    t.add_row(row);
  }
  std::printf("projected aggregate rate (modeled) and memory feasibility\n"
              "(64 GB Edison node, selected block columns, L=100, c=10):\n");
  t.print();
  std::printf(
      "shape check (paper): the 2400 x 1 pure-MPI row is fastest but OOMs for\n"
      "N >= 576 (paper: 12 ranks/socket x 2.65 GB = 31.8 GB > socket memory);\n"
      "hybrid rows stay feasible and deliver 20-31 Tflops.\n\n");

  // (c) functional demonstration of Alg. 3 on mini-MPI.
  const int demo_ranks = cli.get_int("demo-ranks", 4);
  qmc::HubbardParams params;
  params.l = l_meas;
  params.u = 2.0;
  qmc::HubbardModel model(qmc::Lattice::chain(cli.get_int("demo-N", 24)), params);
  qmc::MultiGfOptions opt;
  opt.num_matrices = demo_ranks * 2;
  opt.num_ranks = demo_ranks;
  opt.omp_threads_per_rank = 1;
  opt.cluster_size = c_meas;
  qmc::MultiGfResult r = qmc::run_parallel_fsi(model, opt);
  std::printf("mini-MPI demo (measured): %d matrices on %d ranks -> "
              "%.2f Gflops aggregate, <n> = %.3f, sign = %.1f\n",
              opt.num_matrices, demo_ranks, r.gflops(), r.global.density(),
              r.global.avg_sign());
  std::printf("  scheduler: %llu steal batches, %llu tasks migrated, "
              "pool hit rate %.0f%% (first batch includes warmup misses)\n\n",
              static_cast<unsigned long long>(r.sched.steal_batches),
              static_cast<unsigned long long>(r.sched.stolen_tasks),
              100.0 * r.sched.pool_hit_rate());

  // (d) scheduler A/B on a skewed batch: only the leading quarter of the
  // tasks computes the Rows/Columns passes, so the contiguous static split
  // overloads the low ranks.  One warmup batch first, so both timed runs
  // draw their workspaces from a populated pool.
  qmc::MultiGfOptions skew = opt;
  skew.num_matrices = demo_ranks * 4;
  skew.heavy_fraction = 0.25;
  skew.schedule = qmc::Schedule::WorkStealing;
  (void)qmc::run_parallel_fsi(model, skew);  // pool + cache warmup
  const qmc::MultiGfResult steal = qmc::run_parallel_fsi(model, skew);
  skew.schedule = qmc::Schedule::Static;
  const qmc::MultiGfResult stat = qmc::run_parallel_fsi(model, skew);

  util::Table ab({"schedule", "wall (s)", "balance max/mean", "steals",
                  "pool hit rate"});
  ab.add_row({"static split", util::Table::num(stat.seconds, 3),
              util::Table::num(stat.sched.balance(), 2),
              util::Table::num((long long)stat.sched.stolen_tasks),
              util::Table::num(stat.sched.pool_hit_rate(), 3)});
  ab.add_row({"work stealing", util::Table::num(steal.seconds, 3),
              util::Table::num(steal.sched.balance(), 2),
              util::Table::num((long long)steal.sched.stolen_tasks),
              util::Table::num(steal.sched.pool_hit_rate(), 3)});
  std::printf("scheduler A/B on a skewed batch (%d matrices, heavy fraction "
              "%.2f, %d ranks):\n",
              skew.num_matrices, skew.heavy_fraction, demo_ranks);
  ab.print();

  // (e) batch-dispatch overhead: DQMC sweeps dispatch thousands of small
  // batches, so the per-batch cost of standing up the rank team matters.
  // The persistent executor pool wakes sleeping workers through a condition
  // variable; the old implementation spawned and joined one std::thread per
  // rank per batch.  Time both on empty rank bodies.
  const int dispatch_reps = cli.get_int("dispatch-reps", 200);
  auto empty_body = [](mpi::Communicator& comm) { comm.barrier(); };
  (void)sched::Executor::instance();  // pool already warm from (c)/(d)
  mpi::run(demo_ranks, empty_body, 1);
  util::WallTimer persist_timer;
  for (int i = 0; i < dispatch_reps; ++i) mpi::run(demo_ranks, empty_body, 1);
  const double dispatch_us_persistent =
      persist_timer.seconds() / dispatch_reps * 1e6;
  util::WallTimer spawn_timer;
  for (int i = 0; i < dispatch_reps; ++i) {
    std::vector<std::thread> team;
    team.reserve(static_cast<std::size_t>(demo_ranks));
    for (int rk = 0; rk < demo_ranks; ++rk) team.emplace_back([] {});
    for (std::thread& th : team) th.join();
  }
  const double dispatch_us_spawn = spawn_timer.seconds() / dispatch_reps * 1e6;
  const double dispatch_speedup =
      dispatch_us_persistent > 0 ? dispatch_us_spawn / dispatch_us_persistent
                                 : 1.0;
  std::printf("\nbatch-dispatch overhead (%d empty %d-rank batches):\n"
              "  persistent pool : %8.1f us/batch\n"
              "  spawn-per-batch : %8.1f us/batch  (%.1fx slower)\n",
              dispatch_reps, demo_ranks, dispatch_us_persistent,
              dispatch_us_spawn, dispatch_speedup);

  // Graph-granularity telemetry from the stealing run of section (d): node
  // count, critical path and per-stage busy seconds (zero when FSI_EXEC=0
  // forced the batch back onto the coarse BatchScheduler path).
  if (steal.sched.graph_nodes > 0) {
    std::printf("\ntask-graph telemetry (stealing run): %llu nodes, critical "
                "path %.3f s,\n  mean ready depth %.1f, stage busy s: build "
                "%.3f cls %.3f bsofi %.3f wrap %.3f measure %.3f\n",
                static_cast<unsigned long long>(steal.sched.graph_nodes),
                steal.sched.critical_path_seconds,
                steal.sched.ready_depth_mean, steal.sched.stage_build_seconds,
                steal.sched.stage_cls_seconds, steal.sched.stage_bsofi_seconds,
                steal.sched.stage_wrap_seconds,
                steal.sched.stage_measure_seconds);
  }

  telemetry.add_info("N", static_cast<double>(n_meas));
  telemetry.add_info("L", static_cast<double>(l_meas));
  telemetry.add_info("demo_ranks", static_cast<double>(demo_ranks));
  telemetry.add_metric("fsi_efficiency_vs_dgemm", fsi_efficiency, "ratio");
  telemetry.add_metric("demo_aggregate_gflops", r.gflops(), "gflops");
  telemetry.add_metric("sched_pool_hit_rate", steal.sched.pool_hit_rate(),
                       "ratio");
  telemetry.add_metric("sched_balance_static", stat.sched.balance(), "ratio",
                       false, false);
  telemetry.add_metric("sched_balance_stealing", steal.sched.balance(),
                       "ratio", true, false);
  telemetry.add_metric("sched_steal_batches",
                       static_cast<double>(steal.sched.steal_batches), "count");
  telemetry.add_metric("sched_wall_static_s", stat.seconds, "s", false, false);
  telemetry.add_metric("sched_wall_stealing_s", steal.seconds, "s", false,
                       false);
  telemetry.add_metric("dispatch_us_persistent", dispatch_us_persistent, "us",
                       false, false);
  telemetry.add_metric("dispatch_us_spawn", dispatch_us_spawn, "us", false,
                       false);
  telemetry.add_metric("dispatch_speedup_vs_spawn", dispatch_speedup, "ratio",
                       true, true);
  telemetry.add_metric("graph_nodes",
                       static_cast<double>(steal.sched.graph_nodes), "count");
  telemetry.add_metric("graph_critical_path_s",
                       steal.sched.critical_path_seconds, "s", false, false);
  telemetry.add_metric("graph_ready_depth_mean", steal.sched.ready_depth_mean,
                       "count");
  telemetry.add_metric("graph_stage_build_s", steal.sched.stage_build_seconds,
                       "s", false, false);
  telemetry.add_metric("graph_stage_cls_s", steal.sched.stage_cls_seconds, "s",
                       false, false);
  telemetry.add_metric("graph_stage_bsofi_s", steal.sched.stage_bsofi_seconds,
                       "s", false, false);
  telemetry.add_metric("graph_stage_wrap_s", steal.sched.stage_wrap_seconds,
                       "s", false, false);
  telemetry.add_metric("graph_stage_measure_s",
                       steal.sched.stage_measure_seconds, "s", false, false);
  finish_bench(telemetry);
  return 0;
}
