/// \file bench_dense.cpp
/// \brief Google-benchmark microbenchmarks of the dense substrate (the
/// reproduction's MKL stand-in): GEMM, LU, QR, TRSM, and the FSI building
/// blocks at DQMC-relevant sizes.  Context for every Gflops number printed
/// by the figure benches.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/dense/qr.hpp"
#include "fsi/obs/telemetry.hpp"
#include "fsi/util/rng.hpp"

namespace {

using namespace fsi;
using dense::index_t;
using dense::Matrix;

Matrix random_square(index_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix a(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) a(i, j) = rng.uniform(-1, 1);
  return a;
}

void BM_Gemm(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  Matrix a = random_square(n, 1), b = random_square(n, 2), c(n, n);
  for (auto _ : state) {
    dense::gemm(dense::Trans::No, dense::Trans::No, 1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * n * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmTransA(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  Matrix a = random_square(n, 3), b = random_square(n, 4), c(n, n);
  for (auto _ : state) {
    dense::gemm(dense::Trans::Yes, dense::Trans::No, 1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * n * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmTransA)->Arg(128)->Arg(256);

void BM_LuFactor(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  Matrix a = random_square(n, 5);
  for (auto _ : state) {
    Matrix work = a;
    std::vector<index_t> ipiv;
    dense::getrf(work, ipiv);
    benchmark::DoNotOptimize(work.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 / 3.0 * n * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_LuFactor)->Arg(128)->Arg(256)->Arg(512);

void BM_LuInverse(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  Matrix a = random_square(n, 6);
  for (auto _ : state) {
    Matrix inv = dense::inverse(a);
    benchmark::DoNotOptimize(inv.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * n * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_LuInverse)->Arg(128)->Arg(256);

void BM_QrPanel2NxN(benchmark::State& state) {
  // The BSOFI panel shape: 2N x N.
  const index_t n = static_cast<index_t>(state.range(0));
  util::Rng rng(7);
  Matrix a(2 * n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < 2 * n; ++i) a(i, j) = rng.uniform(-1, 1);
  for (auto _ : state) {
    Matrix work = a;
    std::vector<double> tau;
    dense::geqrf(work, tau);
    benchmark::DoNotOptimize(work.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * n * n * (2 * n - n / 3.0),
      benchmark::Counter::kIsIterationInvariantRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_QrPanel2NxN)->Arg(128)->Arg(256);

void BM_TrsmLeftLower(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  Matrix a = random_square(n, 8);
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;
  Matrix b = random_square(n, 9);
  for (auto _ : state) {
    Matrix x = b;
    dense::trsm(dense::Side::Left, dense::Uplo::Lower, dense::Trans::No,
                dense::Diag::NonUnit, 1.0, a, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      1.0 * n * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_TrsmLeftLower)->Arg(256);

void BM_Ger(benchmark::State& state) {
  // The DQMC rank-1 Green's-function update.
  const index_t n = static_cast<index_t>(state.range(0));
  Matrix a = random_square(n, 10);
  std::vector<double> x(n, 0.5), y(n, -0.25);
  for (auto _ : state) {
    dense::ger(1e-6, x.data(), y.data(), a);
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_Ger)->Arg(400);

}  // namespace

// Like BENCHMARK_MAIN(), plus the repo-wide BENCH_<name>.json emitter.
// Per-kernel numbers live in google-benchmark's own reporters
// (--benchmark_format=json); the telemetry file records the build/health
// context shared with the figure benches.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fsi::obs::BenchTelemetry telemetry("bench_dense");
  telemetry.add_info("metrics_note", "per-kernel rates via --benchmark_format=json");
  const std::string path = telemetry.write();
  if (!path.empty())
    std::printf("[bench] telemetry written to %s\n", path.c_str());
  return 0;
}
