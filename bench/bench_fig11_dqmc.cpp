/// \file bench_fig11_dqmc.cpp
/// \brief Paper Fig. 11 — runtime of a full DQMC simulation.
///
/// "Fig. 11 shows the total runtime of the DQMC with FSI ... FSI with
///  OpenMP gains a factor of 6.9 speedup from single-core to 12-core
///  execution.  In contrast, FSI with MKL only gains a factor of 1.3.
///  As a result, the full DQMC simulation reduces from three and a half
///  hours to forty minutes."
///
/// Paper workload: (N, L) = (400, 100), (w, m) = (100, 200), c = 10.
/// Default is scaled down for a quick run; --paper restores the paper's
/// shape (very long on one core).  Both engines are *measured* on one core
/// (they run the same Markov chain); the 6/12-thread rows are modeled.
///
///   ./bench_fig11_dqmc [--nx 6] [--ny 6] [--L 32] [--warmup 4] [--sweeps 8]

#include "common.hpp"

#include "fsi/util/fpenv.hpp"

#include "fsi/qmc/dqmc.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  using namespace fsi::bench;
  util::Cli cli(argc, argv);
  init_trace(cli);
  obs::BenchTelemetry telemetry("bench_fig11_dqmc");
  const bool paper = cli.has("paper");
  const index_t nx = paper ? 20 : cli.get_int("nx", 6);
  const index_t ny = paper ? 20 : cli.get_int("ny", 6);
  const index_t l = paper ? 100 : cli.get_int("L", 32);
  const index_t warm = paper ? 100 : cli.get_int("warmup", 4);
  const index_t sweeps = paper ? 200 : cli.get_int("sweeps", 8);

  print_header("Fig. 11 — full DQMC simulation runtime",
               "FSI/OpenMP: 6.9x speedup 1->12 cores; FSI/MKL: only 1.3x; "
               "3.5 h -> 40 min on the paper's workload");
  print_host_note();

  qmc::HubbardParams params;
  params.t = 1.0;
  params.u = 2.0;
  params.beta = 1.0;
  params.l = l;
  qmc::HubbardModel model(qmc::Lattice::rectangle(nx, ny), params);
  std::printf("workload: %dx%d lattice (N=%d), L=%d, (w, m) = (%d, %d)\n\n",
              nx, ny, nx * ny, l, warm, sweeps);

  qmc::DqmcOptions opt;
  opt.warmup_sweeps = warm;
  opt.measurement_sweeps = sweeps;
  opt.seed = 3;

  opt.engine = qmc::GreensEngine::Fsi;
  qmc::DqmcResult fsi_r = qmc::run_dqmc(model, opt);
  opt.engine = qmc::GreensEngine::MklStyle;
  qmc::DqmcResult mkl_r = qmc::run_dqmc(model, opt);

  util::Table meas({"engine (measured, 1 core)", "sweeps s", "Green's fn s",
                    "measurements s", "total s", "<n>", "acc."});
  auto row = [&](const char* name, const qmc::DqmcResult& r) {
    meas.add_row({name, util::Table::num(r.timings.warmup_seconds, 2),
                  util::Table::num(r.timings.greens_seconds, 2),
                  util::Table::num(r.timings.measure_seconds, 2),
                  util::Table::num(r.timings.total_seconds, 2),
                  util::Table::num(r.measurements.density(), 3),
                  util::Table::num(r.acceptance_rate, 2)});
  };
  row("FSI", fsi_r);
  row("MKL-style", mkl_r);
  meas.print();
  std::printf("(identical Markov chain: observables must match)\n\n");

  // Modeled multi-thread totals: the sweep part stays serial per matrix;
  // the Green's-function part follows the FSI-OpenMP / MKL-kernel models;
  // measurements parallelise with FSI only (the paper's observation).
  const index_t b2 = l / qmc::default_cluster_size(l);
  const double g = fsi_r.timings.greens_seconds;
  selinv::StageTimes st{0.2 * g, 0.4 * g, 0.4 * g};
  util::Table proj({"threads", "FSI/OpenMP total s (modeled)",
                    "MKL-style total s (modeled)", "FSI speedup",
                    "MKL speedup"});
  const double base = fsi_r.timings.total_seconds;
  for (int p : {1, 6, 12}) {
    const double fsi_total =
        fsi_r.timings.warmup_seconds / selinv::amdahl_speedup(0.55, p) +
        selinv::fsi_openmp_time(st, p, b2) +
        fsi_r.timings.measure_seconds /
            std::min<double>(p, static_cast<double>(b2));
    const double mkl_total =
        mkl_r.timings.warmup_seconds / selinv::amdahl_speedup(0.25, p) +
        selinv::mkl_style_time(st, p, nx * ny) +
        mkl_r.timings.measure_seconds * (p > 1 ? 1.1 : 1.0);
    proj.add_row({util::Table::num((long long)p),
                  util::Table::num(fsi_total, 2), util::Table::num(mkl_total, 2),
                  util::Table::num(base / fsi_total, 1),
                  util::Table::num(mkl_r.timings.total_seconds / mkl_total, 1)});
  }
  proj.print();
  std::printf(
      "\nshape check (paper): FSI/OpenMP ~6.9x at 12 threads, MKL ~1.3x;\n"
      "scaled to the paper's (N, L, w, m) this is the 3.5 h -> 40 min "
      "reduction.\n");
  telemetry.add_info("N", static_cast<double>(nx * ny));
  telemetry.add_info("L", static_cast<double>(l));
  telemetry.add_info("sweeps", static_cast<double>(sweeps));
  telemetry.add_metric("fsi_total_s", fsi_r.timings.total_seconds, "s", false,
                       /*higher_is_better=*/false);
  telemetry.add_metric("mkl_style_total_s", mkl_r.timings.total_seconds, "s",
                       false, /*higher_is_better=*/false);
  telemetry.add_metric("fsi_max_drift", fsi_r.stats.max_drift, "norm", false,
                       /*higher_is_better=*/false);
  telemetry.add_metric("acceptance_rate", fsi_r.acceptance_rate, "ratio");
  finish_bench(telemetry);
  return 0;
}
