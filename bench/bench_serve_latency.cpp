/// \file bench_serve_latency.cpp
/// \brief Request latency and batching throughput of the fsi::serve daemon.
///
/// Runs an in-process serve::Server (real qmc::run_fsi_batch engine) over a
/// Unix socket and drives it with a pipelined burst of identical-shape
/// requests, twice: once with the coalescing window open (batching on) and
/// once with max_batch=1/window=0 (batching off).  Reports the server-side
/// latency quantiles (p50/p95/p99), the throughput of both modes and their
/// ratio, and verifies every response bit-identical against the in-process
/// reference.
///
/// CI gates on the machine-stable ratios only: served_ok_ratio and
/// verified_ratio (both exactly 1.0 when the service is healthy) and the
/// mean batch occupancy relative to max_batch.  Raw latencies and the
/// batching speedup are exported ungated — they move with the host.

#include <cstring>
#include <future>
#include <unistd.h>
#include <vector>

#include "common.hpp"
#include "fsi/qmc/multi_gf.hpp"
#include "fsi/serve/client.hpp"
#include "fsi/serve/server.hpp"

namespace {

using namespace fsi;

serve::InvertRequest make_request(std::uint64_t seed, int lx, int l) {
  serve::InvertRequest r;
  r.lx = static_cast<std::uint32_t>(lx);
  r.ly = 1;
  r.l = static_cast<std::uint32_t>(l);
  r.seed = seed;
  r.field = serve::random_field(r.lx, r.ly, r.l, seed);
  return r;
}

std::vector<double> reference(const serve::InvertRequest& req) {
  qmc::HubbardParams params;
  params.t = req.t;
  params.u = req.u;
  params.beta = req.beta;
  params.l = static_cast<qmc::index_t>(req.l);
  const qmc::HubbardModel model(
      qmc::Lattice::chain(static_cast<qmc::index_t>(req.lx)), params);
  const qmc::index_t c = serve::effective_cluster(req);
  std::vector<qmc::FsiBatchTask> tasks;
  tasks.push_back(qmc::FsiBatchTask{
      qmc::HsField::deserialize(static_cast<qmc::index_t>(req.l),
                                model.num_sites(), req.field.data(),
                                req.field.size()),
      serve::resolve_q(req, c), req.time_dependent});
  qmc::FsiBatchOptions opts;
  opts.cluster_size = c;
  return qmc::run_fsi_batch(model, tasks, opts).front().serialize();
}

struct RunResult {
  std::uint64_t ok = 0;
  std::uint64_t verified = 0;
  double wall_s = 0.0;
  double p50_s = 0.0, p95_s = 0.0, p99_s = 0.0;
  double occupancy_mean = 0.0;
  std::uint64_t queue_high_water = 0;
};

/// One pipelined burst of \p requests identical-shape requests against a
/// fresh server.  \p verify compares each response against the in-process
/// reference (bit-identical or it does not count).
RunResult run_burst(bool batching, int requests, int lx, int l, int max_batch,
                    long window_us, bool verify) {
  serve::ServerOptions options;
  options.endpoint = serve::Endpoint::parse(
      "unix:/tmp/fsi_bench_serve_" + std::to_string(::getpid()) +
      (batching ? "_on" : "_off") + ".sock");
  options.queue_depth = static_cast<std::size_t>(requests) + 8;
  options.batch_window_us = batching ? window_us : 0;
  options.max_batch = batching ? static_cast<std::size_t>(max_batch) : 1;
  serve::Server server(std::move(options));
  server.start();

  RunResult out;
  {
    serve::Client client(server.endpoint());
    std::vector<serve::InvertRequest> sent;
    std::vector<std::future<serve::InvertResponse>> futures;
    const std::int64_t t0 = obs::now_ns();
    for (int i = 0; i < requests; ++i) {
      sent.push_back(make_request(1000 + static_cast<std::uint64_t>(i), lx, l));
      futures.push_back(client.submit(sent.back()));
    }
    for (int i = 0; i < requests; ++i) {
      const serve::InvertResponse resp = futures[static_cast<std::size_t>(i)].get();
      if (resp.status != serve::Status::Ok) continue;
      ++out.ok;
      if (!verify) continue;
      const std::vector<double> expected = reference(sent[static_cast<std::size_t>(i)]);
      if (expected.size() == resp.measurements.size() &&
          std::memcmp(expected.data(), resp.measurements.data(),
                      expected.size() * sizeof(double)) == 0)
        ++out.verified;
    }
    out.wall_s = static_cast<double>(obs::now_ns() - t0) * 1e-9;
  }
  out.p50_s = server.latency_quantile(0.50);
  out.p95_s = server.latency_quantile(0.95);
  out.p99_s = server.latency_quantile(0.99);
  server.stop();
  const serve::ServerStats stats = server.stats();
  out.occupancy_mean = stats.batch_occupancy_mean();
  out.queue_high_water = stats.queue_high_water;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsi;
  util::Cli cli(argc, argv);
  const int requests = cli.get_int("requests", 32);
  const int lx = cli.get_int("lx", 4);
  const int l = cli.get_int("L", 8);
  const int max_batch = cli.get_int("max-batch", 8);
  const long window_us = cli.get_int("window-us", 50000);
  const bool verify = !cli.has("no-verify");
  bench::init_trace(cli);

  bench::print_header(
      "fsi::serve latency & batching throughput",
      "request batching amortises dispatch without changing a single bit");

  obs::BenchTelemetry telemetry("bench_serve_latency");
  telemetry.add_info("requests", requests);
  telemetry.add_info("N", lx);
  telemetry.add_info("L", l);
  telemetry.add_info("max_batch", max_batch);
  telemetry.add_info("window_us", static_cast<double>(window_us));

  const RunResult on =
      run_burst(true, requests, lx, l, max_batch, window_us, verify);
  const RunResult off =
      run_burst(false, requests, lx, l, max_batch, window_us, false);

  const double thr_on = on.wall_s > 0 ? requests / on.wall_s : 0.0;
  const double thr_off = off.wall_s > 0 ? requests / off.wall_s : 0.0;
  const double speedup = thr_off > 0 ? thr_on / thr_off : 0.0;
  const double ok_ratio = static_cast<double>(on.ok + off.ok) / (2.0 * requests);
  const double verified_ratio =
      verify ? static_cast<double>(on.verified) / requests : 1.0;
  const double occupancy_ratio = on.occupancy_mean / max_batch;

  util::Table table({"mode", "req/s", "p50 ms", "p95 ms", "p99 ms",
                     "batch occupancy"});
  table.add_row({"batching on", util::Table::num(thr_on, 1),
                 util::Table::num(on.p50_s * 1e3, 3),
                 util::Table::num(on.p95_s * 1e3, 3),
                 util::Table::num(on.p99_s * 1e3, 3),
                 util::Table::num(on.occupancy_mean, 2)});
  table.add_row({"batching off", util::Table::num(thr_off, 1),
                 util::Table::num(off.p50_s * 1e3, 3),
                 util::Table::num(off.p95_s * 1e3, 3),
                 util::Table::num(off.p99_s * 1e3, 3),
                 util::Table::num(off.occupancy_mean, 2)});
  table.print();
  std::printf("\nbatching speedup %.2fx, served_ok %.3f, bit-identical %.3f\n",
              speedup, ok_ratio, verified_ratio);

  telemetry.add_metric("latency_p50_ms", on.p50_s * 1e3, "ms", false, false);
  telemetry.add_metric("latency_p95_ms", on.p95_s * 1e3, "ms", false, false);
  telemetry.add_metric("latency_p99_ms", on.p99_s * 1e3, "ms", false, false);
  telemetry.add_metric("throughput_batched", thr_on, "req/s", false, true);
  telemetry.add_metric("throughput_unbatched", thr_off, "req/s", false, true);
  telemetry.add_metric("batching_speedup", speedup, "ratio", false, true);
  telemetry.add_metric("served_ok_ratio", ok_ratio, "ratio", true, true);
  telemetry.add_metric("verified_ratio", verified_ratio, "ratio", true, true);
  telemetry.add_metric("batch_occupancy_ratio", occupancy_ratio, "ratio", true,
                       true);
  // Batching-telemetry plane (ungated: host-dependent): what the adaptive
  // batching work (ROADMAP item 1) will use as its control inputs.
  telemetry.add_metric("batch_occupancy_mean", on.occupancy_mean, "req/batch",
                       false, true);
  telemetry.add_metric("queue_high_water_batched",
                       static_cast<double>(on.queue_high_water), "requests",
                       false, false);
  telemetry.add_metric("queue_high_water_unbatched",
                       static_cast<double>(off.queue_high_water), "requests",
                       false, false);
  bench::finish_bench(telemetry);
  return ok_ratio == 1.0 && verified_ratio == 1.0 ? 0 : 1;
}
