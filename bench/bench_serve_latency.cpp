/// \file bench_serve_latency.cpp
/// \brief Request latency and batching throughput of the fsi::serve daemon.
///
/// Runs an in-process serve::Server (real qmc::run_fsi_batch engine) over a
/// Unix socket and drives it with a pipelined burst of identical-shape
/// requests, twice: once with the coalescing window open (batching on) and
/// once with max_batch=1/window=0 (batching off).  Reports the server-side
/// latency quantiles (p50/p95/p99), the throughput of both modes and their
/// ratio, and verifies every response bit-identical against the in-process
/// reference.
///
/// Two further sections exercise the PR-8 serving features:
///
///  - adaptive recovery: a closed-loop client (one request in flight) against
///    a long fixed window vs the same trace with serve::AdaptivePolicy
///    enabled.  The fixed window is pure loss for closed-loop traffic; the
///    policy halves its way down and engages bypass, so the gated
///    adaptive_recovery_speedup lands well above 1.
///  - replica scaling: two closed-loop streams with *different* BatchKeys
///    against one replica, then against two key-sharded replicas
///    (serve::ShardedClient).  Window waits on distinct replicas overlap
///    even on one core, so gated replica_scaling > 1.
///
/// CI gates on the machine-stable ratios: served_ok_ratio / verified_ratio
/// (exactly 1.0 when healthy), batch occupancy relative to max_batch, and
/// the three throughput ratios above (batching_speedup,
/// adaptive_recovery_speedup, replica_scaling) — ratios of same-host runs
/// cancel machine speed.  Raw latencies stay ungated.

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common.hpp"
#include "fsi/qmc/multi_gf.hpp"
#include "fsi/serve/client.hpp"
#include "fsi/serve/server.hpp"
#include "fsi/serve/shard.hpp"

namespace {

using namespace fsi;

serve::InvertRequest make_request(std::uint64_t seed, int lx, int l,
                                  double u = 0.0) {
  serve::InvertRequest r;
  r.lx = static_cast<std::uint32_t>(lx);
  r.ly = 1;
  r.l = static_cast<std::uint32_t>(l);
  r.seed = seed;
  if (u > 0.0) r.u = u;
  r.field = serve::random_field(r.lx, r.ly, r.l, seed);
  return r;
}

/// Client-side routing key of a request (mirrors ShardedClient::route).
serve::BatchKey key_of(const serve::InvertRequest& r) {
  return serve::BatchKey{r.lx, r.ly, r.l, static_cast<qmc::index_t>(r.c),
                         r.t,  r.u,  r.beta};
}

std::vector<double> reference(const serve::InvertRequest& req) {
  qmc::HubbardParams params;
  params.t = req.t;
  params.u = req.u;
  params.beta = req.beta;
  params.l = static_cast<qmc::index_t>(req.l);
  const qmc::HubbardModel model(
      qmc::Lattice::chain(static_cast<qmc::index_t>(req.lx)), params);
  const qmc::index_t c = serve::effective_cluster(req);
  std::vector<qmc::FsiBatchTask> tasks;
  tasks.push_back(qmc::FsiBatchTask{
      qmc::HsField::deserialize(static_cast<qmc::index_t>(req.l),
                                model.num_sites(), req.field.data(),
                                req.field.size()),
      serve::resolve_q(req, c), req.time_dependent});
  qmc::FsiBatchOptions opts;
  opts.cluster_size = c;
  return qmc::run_fsi_batch(model, tasks, opts).front().serialize();
}

struct RunResult {
  std::uint64_t ok = 0;
  std::uint64_t verified = 0;
  double wall_s = 0.0;
  double p50_s = 0.0, p95_s = 0.0, p99_s = 0.0;
  double occupancy_mean = 0.0;
  std::uint64_t queue_high_water = 0;
};

/// One pipelined burst of \p requests identical-shape requests against a
/// fresh server.  \p verify compares each response against the in-process
/// reference (bit-identical or it does not count).
RunResult run_burst(bool batching, int requests, int lx, int l, int max_batch,
                    long window_us, bool verify) {
  serve::ServerOptions options;
  options.endpoint = serve::Endpoint::parse(
      "unix:/tmp/fsi_bench_serve_" + std::to_string(::getpid()) +
      (batching ? "_on" : "_off") + ".sock");
  options.queue_depth = static_cast<std::size_t>(requests) + 8;
  options.batch_window_us = batching ? window_us : 0;
  options.max_batch = batching ? static_cast<std::size_t>(max_batch) : 1;
  // The "on" arm is the shipped default — adaptive policy included — so the
  // gated speedup measures batching as an operator would actually run it.
  // The "off" arm pins the no-coalescing plan.
  options.adaptive.enabled = batching;
  serve::Server server(std::move(options));
  server.start();

  RunResult out;
  {
    serve::Client client(server.endpoint());
    std::vector<serve::InvertRequest> sent;
    std::vector<std::future<serve::InvertResponse>> futures;
    std::vector<serve::InvertResponse> responses;
    const std::int64_t t0 = obs::now_ns();
    for (int i = 0; i < requests; ++i) {
      sent.push_back(make_request(1000 + static_cast<std::uint64_t>(i), lx, l));
      futures.push_back(client.submit(sent.back()));
    }
    for (int i = 0; i < requests; ++i)
      responses.push_back(futures[static_cast<std::size_t>(i)].get());
    out.wall_s = static_cast<double>(obs::now_ns() - t0) * 1e-9;
    // Verify outside the timed region: the in-process reference recompute
    // costs an engine run per request and would swamp the serving wall.
    for (int i = 0; i < requests; ++i) {
      const serve::InvertResponse& resp = responses[static_cast<std::size_t>(i)];
      if (resp.status != serve::Status::Ok) continue;
      ++out.ok;
      if (!verify) continue;
      const std::vector<double> expected = reference(sent[static_cast<std::size_t>(i)]);
      if (expected.size() == resp.measurements.size() &&
          std::memcmp(expected.data(), resp.measurements.data(),
                      expected.size() * sizeof(double)) == 0)
        ++out.verified;
    }
  }
  out.p50_s = server.latency_quantile(0.50);
  out.p95_s = server.latency_quantile(0.95);
  out.p99_s = server.latency_quantile(0.99);
  server.stop();
  const serve::ServerStats stats = server.stats();
  out.occupancy_mean = stats.batch_occupancy_mean();
  out.queue_high_water = stats.queue_high_water;
  return out;
}

struct LoopResult {
  std::uint64_t ok = 0;
  double wall_s = 0.0;
  serve::StatsResponse stats;
};

/// One closed-loop client (a single request in flight at a time), so a
/// coalescing window is pure loss: no straggler can arrive while the
/// batcher waits.  With \p adaptive the policy measures exactly that and
/// bypasses; without it every request pays the full window.
LoopResult run_closed_loop(bool adaptive, int requests, int lx, int l,
                           long window_us) {
  serve::ServerOptions options;
  options.endpoint = serve::Endpoint::parse(
      "unix:/tmp/fsi_bench_serve_" + std::to_string(::getpid()) +
      (adaptive ? "_adapt" : "_fixed") + ".sock");
  options.queue_depth = 16;
  options.batch_window_us = window_us;
  options.max_batch = 8;
  options.adaptive.enabled = adaptive;
  serve::Server server(std::move(options));
  server.start();

  LoopResult out;
  {
    serve::Client client(server.endpoint());
    const std::int64_t t0 = obs::now_ns();
    for (int i = 0; i < requests; ++i) {
      const serve::InvertResponse resp =
          client.request(make_request(2000 + static_cast<std::uint64_t>(i),
                                      lx, l));
      if (resp.status == serve::Status::Ok) ++out.ok;
    }
    out.wall_s = static_cast<double>(obs::now_ns() - t0) * 1e-9;
    out.stats = client.stats();
  }
  server.stop();
  return out;
}

/// Two closed-loop streams with different BatchKeys against a fleet of
/// \p replicas key-sharded daemons (fixed window, adaptive off).  Window
/// waits are sleeps, so with the streams on distinct replicas they overlap
/// even on a single core — that is the scale-out win this measures.
double run_replicated(std::size_t replicas, int per_stream, int lx, int l,
                      long window_us, double u_a, double u_b,
                      std::uint64_t* ok_out) {
  std::vector<std::unique_ptr<serve::Server>> servers;
  std::vector<serve::Endpoint> endpoints;
  for (std::size_t i = 0; i < replicas; ++i) {
    serve::ServerOptions options;
    options.endpoint = serve::Endpoint::parse(
        "unix:/tmp/fsi_bench_serve_" + std::to_string(::getpid()) + "_rep" +
        std::to_string(replicas) + "_" + std::to_string(i) + ".sock");
    options.queue_depth = 16;
    options.batch_window_us = window_us;
    options.max_batch = 8;
    options.adaptive.enabled = false;
    servers.push_back(std::make_unique<serve::Server>(std::move(options)));
    servers.back()->start();
    endpoints.push_back(servers.back()->endpoint());
  }

  std::atomic<std::uint64_t> ok{0};
  const std::int64_t t0 = obs::now_ns();
  auto stream = [&](double u, std::uint64_t seed0) {
    serve::ShardedClient client(endpoints);
    for (int i = 0; i < per_stream; ++i) {
      const serve::InvertResponse resp = client.request(
          make_request(seed0 + static_cast<std::uint64_t>(i), lx, l, u));
      if (resp.status == serve::Status::Ok) ++ok;
    }
  };
  std::thread ta(stream, u_a, 3000);
  std::thread tb(stream, u_b, 4000);
  ta.join();
  tb.join();
  const double wall_s = static_cast<double>(obs::now_ns() - t0) * 1e-9;

  for (auto& s : servers) s->stop();
  *ok_out = ok.load();
  return wall_s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsi;
  util::Cli cli(argc, argv);
  const int requests = cli.get_int("requests", 32);
  const int lx = cli.get_int("lx", 4);
  const int l = cli.get_int("L", 8);
  const int max_batch = cli.get_int("max-batch", 8);
  const long window_us = cli.get_int("window-us", 50000);
  const bool verify = !cli.has("no-verify");
  bench::init_trace(cli);

  bench::print_header(
      "fsi::serve latency & batching throughput",
      "request batching amortises dispatch without changing a single bit");

  obs::BenchTelemetry telemetry("bench_serve_latency");
  telemetry.add_info("requests", requests);
  telemetry.add_info("N", lx);
  telemetry.add_info("L", l);
  telemetry.add_info("max_batch", max_batch);
  telemetry.add_info("window_us", static_cast<double>(window_us));

  // Warm-up burst (untimed): first contact pays pool misses and page
  // faults that would otherwise land on whichever mode runs first.
  run_burst(true, requests, lx, l, max_batch, window_us, false);

  // Interleave repeated on/off pairs and sum the walls: the gated speedup
  // ratio is ~1.1x on one core, so single-burst noise must be averaged out.
  const int repeats = cli.get_int("repeats", 5);
  RunResult on, off;  // last-pair snapshot (latency quantiles, occupancy)
  double on_wall = 0.0, off_wall = 0.0;
  std::uint64_t ok_total = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    on = run_burst(true, requests, lx, l, max_batch, window_us, false);
    off = run_burst(false, requests, lx, l, max_batch, window_us, false);
    on_wall += on.wall_s;
    off_wall += off.wall_s;
    ok_total += on.ok + off.ok;
  }
  // Bit-identity is checked in a dedicated untimed burst *after* the timed
  // pairs: the in-process reference recomputation is an engine run per
  // request, and interleaving it with the timed bursts warms caches for
  // whichever arm runs next, biasing the gated ratio.
  const RunResult checked =
      verify ? run_burst(true, requests, lx, l, max_batch, window_us, true)
             : RunResult{};
  const double total = static_cast<double>(repeats) * requests;
  const double thr_on = on_wall > 0 ? total / on_wall : 0.0;
  const double thr_off = off_wall > 0 ? total / off_wall : 0.0;
  const double speedup = thr_off > 0 ? thr_on / thr_off : 0.0;
  const double ok_ratio =
      static_cast<double>(ok_total) / (2.0 * repeats * requests);
  const double verified_ratio =
      verify ? static_cast<double>(checked.verified) / requests : 1.0;
  const double occupancy_ratio = on.occupancy_mean / max_batch;

  util::Table table({"mode", "req/s", "p50 ms", "p95 ms", "p99 ms",
                     "batch occupancy"});
  table.add_row({"batching on", util::Table::num(thr_on, 1),
                 util::Table::num(on.p50_s * 1e3, 3),
                 util::Table::num(on.p95_s * 1e3, 3),
                 util::Table::num(on.p99_s * 1e3, 3),
                 util::Table::num(on.occupancy_mean, 2)});
  table.add_row({"batching off", util::Table::num(thr_off, 1),
                 util::Table::num(off.p50_s * 1e3, 3),
                 util::Table::num(off.p95_s * 1e3, 3),
                 util::Table::num(off.p99_s * 1e3, 3),
                 util::Table::num(off.occupancy_mean, 2)});
  table.print();
  std::printf("\nbatching speedup %.2fx, served_ok %.3f, bit-identical %.3f\n",
              speedup, ok_ratio, verified_ratio);

  // --- Adaptive recovery: closed-loop traffic vs a long fixed window ------
  const int recovery_requests = cli.get_int("recovery-requests", 24);
  const long recovery_window_us = cli.get_int("recovery-window-us", 5000);
  telemetry.add_info("recovery_requests", recovery_requests);
  telemetry.add_info("recovery_window_us",
                     static_cast<double>(recovery_window_us));
  const LoopResult fixed = run_closed_loop(false, recovery_requests, lx, l,
                                           recovery_window_us);
  const LoopResult adaptive = run_closed_loop(true, recovery_requests, lx, l,
                                              recovery_window_us);
  const double thr_fixed =
      fixed.wall_s > 0 ? recovery_requests / fixed.wall_s : 0.0;
  const double thr_adaptive =
      adaptive.wall_s > 0 ? recovery_requests / adaptive.wall_s : 0.0;
  const double recovery_speedup =
      thr_fixed > 0 ? thr_adaptive / thr_fixed : 0.0;
  const bool bypass_engaged = adaptive.stats.policy_bypass != 0;

  util::Table recovery({"policy", "req/s", "window us", "bypass"});
  recovery.add_row({"fixed window", util::Table::num(thr_fixed, 1),
                    util::Table::num(static_cast<double>(recovery_window_us), 0),
                    "-"});
  recovery.add_row({"adaptive", util::Table::num(thr_adaptive, 1),
                    util::Table::num(
                        static_cast<double>(adaptive.stats.policy_window_us), 0),
                    bypass_engaged ? "yes" : "no"});
  recovery.print();
  std::printf("\nadaptive recovery %.2fx (closed loop, %ld us fixed window)\n",
              recovery_speedup, recovery_window_us);

  // --- Replica scaling: 1 vs 2 key-sharded replicas -----------------------
  const int per_stream = cli.get_int("replica-stream", 12);
  const long replica_window_us = cli.get_int("replica-window-us", 4000);
  telemetry.add_info("replica_stream", per_stream);
  telemetry.add_info("replica_window_us",
                     static_cast<double>(replica_window_us));
  // Two closed-loop streams must carry different BatchKeys that shard to
  // different replicas; scan u offsets until the rendezvous hash splits.
  const double u_a = 2.0;
  double u_b = 2.5;
  for (int i = 0; i < 32; ++i) {
    const auto ka = key_of(make_request(1, lx, l, u_a));
    const auto kb = key_of(make_request(1, lx, l, u_b));
    if (serve::shard_for(ka, 2) != serve::shard_for(kb, 2)) break;
    u_b += 0.5;
  }
  std::uint64_t ok1 = 0, ok2 = 0;
  const double wall1 = run_replicated(1, per_stream, lx, l, replica_window_us,
                                      u_a, u_b, &ok1);
  const double wall2 = run_replicated(2, per_stream, lx, l, replica_window_us,
                                      u_a, u_b, &ok2);
  const double thr_rep1 = wall1 > 0 ? 2.0 * per_stream / wall1 : 0.0;
  const double thr_rep2 = wall2 > 0 ? 2.0 * per_stream / wall2 : 0.0;
  const double replica_scaling = thr_rep1 > 0 ? thr_rep2 / thr_rep1 : 0.0;

  util::Table scaling({"replicas", "req/s", "served ok"});
  scaling.add_row({"1", util::Table::num(thr_rep1, 1),
                   util::Table::num(static_cast<double>(ok1), 0)});
  scaling.add_row({"2 (key-sharded)", util::Table::num(thr_rep2, 1),
                   util::Table::num(static_cast<double>(ok2), 0)});
  scaling.print();
  std::printf("\nreplica scaling %.2fx (two streams, %ld us window)\n",
              replica_scaling, replica_window_us);

  const bool sections_ok =
      fixed.ok == static_cast<std::uint64_t>(recovery_requests) &&
      adaptive.ok == static_cast<std::uint64_t>(recovery_requests) &&
      ok1 == 2u * static_cast<std::uint64_t>(per_stream) &&
      ok2 == 2u * static_cast<std::uint64_t>(per_stream);

  telemetry.add_metric("latency_p50_ms", on.p50_s * 1e3, "ms", false, false);
  telemetry.add_metric("latency_p95_ms", on.p95_s * 1e3, "ms", false, false);
  telemetry.add_metric("latency_p99_ms", on.p99_s * 1e3, "ms", false, false);
  telemetry.add_metric("throughput_batched", thr_on, "req/s", false, true);
  telemetry.add_metric("throughput_unbatched", thr_off, "req/s", false, true);
  telemetry.add_metric("batching_speedup", speedup, "ratio", true, true);
  telemetry.add_metric("served_ok_ratio", ok_ratio, "ratio", true, true);
  telemetry.add_metric("verified_ratio", verified_ratio, "ratio", true, true);
  telemetry.add_metric("batch_occupancy_ratio", occupancy_ratio, "ratio", true,
                       true);
  // Batching-telemetry plane (ungated: host-dependent): what the adaptive
  // batching work (ROADMAP item 1) will use as its control inputs.
  telemetry.add_metric("batch_occupancy_mean", on.occupancy_mean, "req/batch",
                       false, true);
  telemetry.add_metric("queue_high_water_batched",
                       static_cast<double>(on.queue_high_water), "requests",
                       false, false);
  telemetry.add_metric("queue_high_water_unbatched",
                       static_cast<double>(off.queue_high_water), "requests",
                       false, false);
  // Adaptive-recovery plane: the window the policy settled on (should sit
  // at 0 = bypass for closed-loop traffic) and the gated recovery ratio.
  telemetry.add_metric("adaptive_recovery_speedup", recovery_speedup, "ratio",
                       true, true);
  telemetry.add_metric("adaptive_bypass_engaged", bypass_engaged ? 1.0 : 0.0,
                       "bool", true, true);
  telemetry.add_metric("adaptive_final_window_us",
                       static_cast<double>(adaptive.stats.policy_window_us),
                       "us", false, false);
  telemetry.add_metric("throughput_fixed_window", thr_fixed, "req/s", false,
                       true);
  telemetry.add_metric("throughput_adaptive", thr_adaptive, "req/s", false,
                       true);
  // Replica plane: gated monotone throughput gain from 1 -> 2 replicas.
  telemetry.add_metric("replica_scaling", replica_scaling, "ratio", true, true);
  telemetry.add_metric("throughput_replicas_1", thr_rep1, "req/s", false, true);
  telemetry.add_metric("throughput_replicas_2", thr_rep2, "req/s", false, true);
  bench::finish_bench(telemetry);
  return ok_ratio == 1.0 && verified_ratio == 1.0 && sections_ok ? 0 : 1;
}
