/// \file bench_fig8_perf.cpp
/// \brief Paper Fig. 8 (top) — per-stage performance of FSI vs block size.
///
/// "The top plot shows the performance profile of the three steps of FSI on
///  the Ivy Bridge processor ... the lower performance rate of the dense
///  matrix inversions (BSOFI) is compensated by DGEMM-rich operations at
///  the clustering and wrapping steps."
///
/// Workload: b = L/c = 10 block columns, (L, c) = (100, 10), sweeping N.
/// Default sizes are scaled for a single core; --paper restores the paper's
/// N in {256, 400, 576, 784, 1024} (several minutes); --quick is the CI
/// smoke shape (two small N, seconds).
///
///   ./bench_fig8_perf [--paper|--quick] [--L 100] [--c 10] [--trace]
///                     [--no-trace] [--no-health] [--health-sample N]
///
/// With --trace (or FSI_TRACE=1) every FSI stage and per-cluster/per-seed
/// iteration is recorded and exported as bench_fig8_perf.trace.json.
/// Always writes BENCH_bench_fig8_perf.json telemetry; CI regression-gates
/// on the machine-stable `fsi_efficiency_vs_dgemm` ratio.

#include <vector>

#include "common.hpp"

#include "fsi/util/fpenv.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  using namespace fsi::bench;
  util::Cli cli(argc, argv);
  const index_t l = cli.get_int("L", 100);
  const index_t c = cli.get_int("c", 10);
  init_trace(cli);

  obs::BenchTelemetry telemetry("bench_fig8_perf");
  telemetry.add_info("L", static_cast<double>(l));
  telemetry.add_info("c", static_cast<double>(c));

  std::vector<index_t> sizes = {64, 96, 128, 192, 256};
  if (cli.has("paper")) sizes = {256, 400, 576, 784, 1024};
  if (cli.has("quick")) sizes = {48, 64};
  telemetry.add_info("sizes", static_cast<double>(sizes.size()));
  telemetry.add_info("n_max", static_cast<double>(sizes.back()));

  print_header("Fig. 8 (top) — FSI per-stage performance rate vs N",
               "CLS and WRP run near the DGEMM rate; BSOFI lower; total "
               "~180 Gflops at 12 cores (paper) — shapes reproduce per-core");

  util::Table t({"N", "DGEMM GF/s", "CLS GF/s", "BSOFI GF/s", "WRP GF/s",
                 "FSI total GF/s", "FSI time s"});
  double last_peak = 0.0, last_fsi = 0.0;
  for (index_t n : sizes) {
    const double peak = dgemm_gflops(n);
    pcyclic::PCyclicMatrix m = make_hubbard(n, l);
    StageProfile p = profile_fsi(m, c, pcyclic::Pattern::Columns, 3);
    const double fsi_rate = p.gflops(p.total_seconds(), p.total_flops());
    t.add_row({util::Table::num((long long)n), util::Table::num(peak, 1),
               util::Table::num(p.gflops(p.seconds.cls, p.flops_cls), 1),
               util::Table::num(p.gflops(p.seconds.bsofi, p.flops_bsofi), 1),
               util::Table::num(p.gflops(p.seconds.wrap, p.flops_wrap), 1),
               util::Table::num(fsi_rate, 1),
               util::Table::num(p.total_seconds(), 2)});
    last_peak = peak;
    last_fsi = fsi_rate;
    char key[48];
    std::snprintf(key, sizeof key, "fsi_gflops_n%d", (int)n);
    telemetry.add_metric(key, fsi_rate, "gflops");
  }
  t.print();
  std::printf(
      "\nshape check (paper): BSOFI column < CLS/WRP columns ~ DGEMM column;\n"
      "FSI total approaches the DGEMM practical peak as N grows.\n");

  // The CI gate: FSI rate relative to the same machine's DGEMM practical
  // peak at the largest N — stable across hosts where raw GFLOP/s is not.
  telemetry.add_metric("dgemm_gflops_nmax", last_peak, "gflops");
  telemetry.add_metric("fsi_efficiency_vs_dgemm",
                       last_peak > 0.0 ? last_fsi / last_peak : 0.0, "ratio",
                       /*gate=*/true);
  finish_bench(telemetry);
  return 0;
}
