/// \file bench_fig8_perf.cpp
/// \brief Paper Fig. 8 (top) — per-stage performance of FSI vs block size.
///
/// "The top plot shows the performance profile of the three steps of FSI on
///  the Ivy Bridge processor ... the lower performance rate of the dense
///  matrix inversions (BSOFI) is compensated by DGEMM-rich operations at
///  the clustering and wrapping steps."
///
/// Workload: b = L/c = 10 block columns, (L, c) = (100, 10), sweeping N.
/// Default sizes are scaled for a single core; --paper restores the paper's
/// N in {256, 400, 576, 784, 1024} (several minutes).
///
///   ./bench_fig8_perf [--paper] [--L 100] [--c 10] [--trace]
///
/// With --trace (or FSI_TRACE=1) every FSI stage and per-cluster/per-seed
/// iteration is recorded and exported as bench_fig8_perf.trace.json.

#include <vector>

#include "common.hpp"

#include "fsi/util/fpenv.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  using namespace fsi::bench;
  util::Cli cli(argc, argv);
  const index_t l = cli.get_int("L", 100);
  const index_t c = cli.get_int("c", 10);
  init_trace(cli);

  std::vector<index_t> sizes = {64, 96, 128, 192, 256};
  if (cli.has("paper")) sizes = {256, 400, 576, 784, 1024};

  print_header("Fig. 8 (top) — FSI per-stage performance rate vs N",
               "CLS and WRP run near the DGEMM rate; BSOFI lower; total "
               "~180 Gflops at 12 cores (paper) — shapes reproduce per-core");

  util::Table t({"N", "DGEMM GF/s", "CLS GF/s", "BSOFI GF/s", "WRP GF/s",
                 "FSI total GF/s", "FSI time s"});
  for (index_t n : sizes) {
    const double peak = dgemm_gflops(n);
    pcyclic::PCyclicMatrix m = make_hubbard(n, l);
    StageProfile p = profile_fsi(m, c, pcyclic::Pattern::Columns, 3);
    t.add_row({util::Table::num((long long)n), util::Table::num(peak, 1),
               util::Table::num(p.gflops(p.seconds.cls, p.flops_cls), 1),
               util::Table::num(p.gflops(p.seconds.bsofi, p.flops_bsofi), 1),
               util::Table::num(p.gflops(p.seconds.wrap, p.flops_wrap), 1),
               util::Table::num(p.gflops(p.total_seconds(), p.total_flops()), 1),
               util::Table::num(p.total_seconds(), 2)});
  }
  t.print();
  std::printf(
      "\nshape check (paper): BSOFI column < CLS/WRP columns ~ DGEMM column;\n"
      "FSI total approaches the DGEMM practical peak as N grows.\n");
  finish_trace("bench_fig8_perf");
  return 0;
}
