/// \file bench_validation.cpp
/// \brief Paper Sec. V-A — correctness validation of the FSI algorithm.
///
/// "We generate a random 6400 by 6400 p-cyclic Hubbard matrix
///  (N, L) = (100, 64) with (t, beta, sigma, U) = (1, 1, 1, 2).  The
///  condition number of M is approximately 1e5.  We compute b selected
///  block columns by FSI.  G is computed by Intel MKL routines DGETRF and
///  DGETRI.  The relative error ... < 1e-10."
///
/// This bench reruns the experiment at the paper's exact size (our dense
/// kernels replacing MKL) and reports the same relative-error statistic.
///
///   ./bench_validation [--N 100] [--L 64] [--c 8]

#include "common.hpp"

#include "fsi/util/fpenv.hpp"

#include "fsi/dense/lu.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  using namespace fsi::bench;
  util::Cli cli(argc, argv);
  const index_t n = cli.get_int("N", 100);
  const index_t l = cli.get_int("L", 64);
  const index_t c = cli.get_int("c", 8);  // 8 divides 64; paper used c ~ sqrt(L)
  init_trace(cli);

  obs::BenchTelemetry telemetry("bench_validation");
  telemetry.add_info("N", static_cast<double>(n));
  telemetry.add_info("L", static_cast<double>(l));
  telemetry.add_info("c", static_cast<double>(c));

  print_header("Sec. V-A correctness validation",
               "relative error of FSI block columns vs DGETRF/DGETRI < 1e-10; "
               "cond(M) ~ 1e5");

  pcyclic::PCyclicMatrix m = make_hubbard(n, l);
  std::printf("Hubbard matrix: %d x %d, (N, L) = (%d, %d), "
              "(t, beta, sigma, U) = (1, 1, 1, 2)\n", m.dim(), m.dim(), n, l);

  // Condition number of the assembled M (Hager 1-norm estimate).
  util::WallTimer timer;
  dense::Matrix md = m.to_dense();
  dense::LuFactorization lu(dense::Matrix::copy_of(md.view()));
  const double cond = dense::cond1_estimate(lu, dense::one_norm(md));
  std::printf("estimated cond_1(M) = %.2e   (paper: ~1e5)\n", cond);

  // Reference: full dense inverse (the paper's MKL DGETRF+DGETRI).
  timer.reset();
  dense::Matrix g = lu.inverse();
  const double t_lu = timer.seconds();

  // FSI: b block columns.
  selinv::FsiOptions opts;
  opts.c = c;
  opts.pattern = pcyclic::Pattern::Columns;
  util::Rng rng(9);
  selinv::FsiStats stats;
  timer.reset();
  pcyclic::SelectedInversion s = selinv::fsi(m, opts, rng, &stats);
  const double t_fsi = timer.seconds();

  // The paper's error statistic: mean over selected blocks of
  // ||S_ij - G_{i, cj-q}||_F / ||G||_F per block.
  double err_sum = 0.0;
  for (const auto& [k, col] : s.keys()) {
    const dense::Matrix ref = pcyclic::dense_block(g, n, k, col);
    err_sum += dense::rel_fro_error(s.at(k, col), ref);
  }
  const double rel_err = err_sum / static_cast<double>(s.size());

  util::Table t({"quantity", "value", "paper"});
  t.add_row({"relative error (mean over blocks)", util::Table::sci(rel_err),
             "< 1e-10"});
  t.add_row({"selected blocks", util::Table::num((long long)s.size()),
             std::to_string(l / c) + " columns"});
  t.add_row({"FSI q (random)", util::Table::num((long long)stats.q), "uniform"});
  t.add_row({"FSI time (s)", util::Table::num(t_fsi, 3), "-"});
  t.add_row({"dense DGETRF/DGETRI time (s)", util::Table::num(t_lu, 3), "-"});
  t.add_row({"FSI speedup vs full inversion", util::Table::num(t_lu / t_fsi, 1),
             "~ (2/9) c L / b-col share"});
  t.print();

  std::printf("\nvalidation %s: relative error %.2e %s 1e-10\n",
              rel_err < 1e-10 ? "PASSED" : "FAILED", rel_err,
              rel_err < 1e-10 ? "<" : ">=");

  // Stress instance: a much stiffer Hubbard matrix (low temperature,
  // strong coupling) whose chain products span many orders of magnitude —
  // the regime where the BSOFI orthogonal factorisation earns its keep.
  {
    const index_t ns = cli.get_int("stress-N", 64);
    const index_t ls = cli.get_int("stress-L", 64);
    pcyclic::PCyclicMatrix ms = make_hubbard(ns, ls, 2016, /*u=*/6.0,
                                             /*beta=*/6.0);
    dense::Matrix msd = ms.to_dense();
    dense::LuFactorization lus(dense::Matrix::copy_of(msd.view()));
    const double conds = dense::cond1_estimate(lus, dense::one_norm(msd));
    dense::Matrix gs = lus.inverse();
    selinv::FsiOptions so;
    so.c = 8;
    so.pattern = pcyclic::Pattern::Columns;
    auto ss = selinv::fsi(ms, so, rng);
    double worst = 0.0;
    for (const auto& [k, col] : ss.keys())
      worst = std::max(worst, dense::rel_fro_error(
                                  ss.at(k, col),
                                  pcyclic::dense_block(gs, ns, k, col)));
    std::printf(
        "\nstress instance (N=%d, L=%d, U=6, beta=6): cond_1(M) = %.2e, "
        "max rel err = %.2e (%s)\n",
        ns, ls, conds, worst, worst < 1e-10 ? "PASSED" : "FAILED");
    telemetry.add_metric("stress_max_rel_err", worst, "rel_err", false,
                         /*higher_is_better=*/false);
  }
  telemetry.add_metric("cond1_m", cond, "cond");
  telemetry.add_metric("rel_err_mean", rel_err, "rel_err", false, false);
  telemetry.add_metric("fsi_seconds", t_fsi, "s", false, false);
  telemetry.add_metric("speedup_vs_dense_lu", t_lu / t_fsi, "ratio");
  finish_bench(telemetry);
  return rel_err < 1e-10 ? 0 : 1;
}
