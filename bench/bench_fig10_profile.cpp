/// \file bench_fig10_profile.cpp
/// \brief Paper Fig. 10 — runtime profile on a single Hubbard matrix:
/// Green's function computation vs physical measurements, for Serial /
/// MKL-style / FSI+OpenMP execution.
///
/// "The pure MKL execution reduces the CPU time for computing Green's
///  function ... but increases the CPU time for the physical measurements
///  due to the execution of a sequential code in multi-threads.  However,
///  FSI with OpenMP uses 87% less CPU time for the computation of Green's
///  functions and physical measurements."
///
/// Workload (paper): (L, N) = (100, 400), c = 10; all diagonal blocks,
/// b block rows and b block columns; equal-time + SPXX measurements.
/// Default size is scaled down; --paper restores it.  The single-core
/// measured section compares the FSI *algorithm* against the explicit-form
/// baseline; the 12-thread bars are modeled (1-core host).
///
///   ./bench_fig10_profile [--N 64] [--L 40] [--c 5] [--paper] [--no-trace]
///
/// Tracing is ON by default here (this bench IS the stage profile): the
/// CLS/BSOFI/WRP wall times in the model-vs-measured section come from the
/// recorded trace spans, and the full trace is exported as
/// bench_fig10_profile.trace.json for chrome://tracing / Perfetto.

#include "common.hpp"

#include "fsi/util/fpenv.hpp"

#include "fsi/pcyclic/explicit_inverse.hpp"
#include "fsi/qmc/dqmc.hpp"
#include "fsi/qmc/measurements.hpp"

namespace {

using namespace fsi;
using namespace fsi::bench;

struct Profile {
  double greens = 0.0, measure = 0.0;
};

/// FSI path: CLS+BSOFI once, wrap all-diagonals + rows + columns, then the
/// two measurement kernels.
Profile fsi_profile(const qmc::HubbardModel& model, const qmc::HsField& field,
                    index_t c, bool parallel_measure) {
  Profile out;
  const index_t l = model.params().l;
  const pcyclic::Selection sel(l, c, 1);
  util::WallTimer t;

  struct Blocks {
    pcyclic::SelectedInversion diag, rows, cols;
  };
  auto compute = [&](qmc::Spin spin) {
    const pcyclic::PCyclicMatrix m = model.build_m(field, spin);
    const pcyclic::BlockOps ops(m);
    const auto reduced = selinv::cluster(m, c, 1, parallel_measure);
    const auto gtilde = bsofi::invert(reduced);
    return Blocks{selinv::wrap(ops, gtilde, pcyclic::Pattern::AllDiagonals, sel,
                               parallel_measure),
                  selinv::wrap(ops, gtilde, pcyclic::Pattern::Rows, sel,
                               parallel_measure),
                  selinv::wrap(ops, gtilde, pcyclic::Pattern::Columns, sel,
                               parallel_measure)};
  };
  Blocks up = compute(qmc::Spin::Up);
  Blocks dn = compute(qmc::Spin::Down);
  out.greens = t.seconds();

  t.reset();
  qmc::Measurements meas(l, model.lattice().num_distance_classes());
  meas.add_sample(1.0);
  qmc::accumulate_equal_time(model.lattice(), up.diag, dn.diag,
                             model.params().t, 1.0, parallel_measure, meas);
  qmc::accumulate_spxx(model.lattice(), up.rows, up.cols, dn.rows, dn.cols, 1.0,
                       parallel_measure, meas);
  out.measure = t.seconds();
  return out;
}

/// Baseline: the same blocks via the explicit form (Eq. 3) with dense
/// kernels only — the algorithmic comparator measurable on one core.
Profile explicit_profile(const qmc::HubbardModel& model,
                         const qmc::HsField& field, index_t c) {
  Profile out;
  const index_t l = model.params().l;
  const pcyclic::Selection sel(l, c, 1);
  util::WallTimer t;

  struct Blocks {
    pcyclic::SelectedInversion diag, rows, cols;
  };
  auto compute = [&](qmc::Spin spin) {
    const pcyclic::PCyclicMatrix m = model.build_m(field, spin);
    Blocks blk{pcyclic::SelectedInversion(pcyclic::Pattern::AllDiagonals,
                                          m.block_size(), sel),
               pcyclic::SelectedInversion(pcyclic::Pattern::Rows,
                                          m.block_size(), sel),
               pcyclic::SelectedInversion(pcyclic::Pattern::Columns,
                                          m.block_size(), sel)};
    for (auto* s : {&blk.diag, &blk.rows, &blk.cols})
      for (const auto& [k, col] : s->keys())
        s->slot(k, col) = pcyclic::explicit_block(m, k, col);
    return blk;
  };
  Blocks up = compute(qmc::Spin::Up);
  Blocks dn = compute(qmc::Spin::Down);
  out.greens = t.seconds();

  t.reset();
  qmc::Measurements meas(l, model.lattice().num_distance_classes());
  meas.add_sample(1.0);
  qmc::accumulate_equal_time(model.lattice(), up.diag, dn.diag,
                             model.params().t, 1.0, false, meas);
  qmc::accumulate_spxx(model.lattice(), up.rows, up.cols, dn.rows, dn.cols, 1.0,
                       false, meas);
  out.measure = t.seconds();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  const bool paper = cli.has("paper");
  const index_t nx = paper ? 400 : cli.get_int("N", 64);
  const index_t l = paper ? 100 : cli.get_int("L", 40);
  const index_t c = paper ? 10 : cli.get_int("c", 5);
  const index_t b = l / c;
  init_trace(cli);
  // This bench reproduces the paper's stage-profile table, so spans are on
  // unless explicitly disabled (--no-trace); FSI_TRACE=0 has no effect here.
  if (!cli.has("no-trace")) obs::set_enabled(true);

  obs::BenchTelemetry telemetry("bench_fig10_profile");
  telemetry.add_info("N", static_cast<double>(nx));
  telemetry.add_info("L", static_cast<double>(l));
  telemetry.add_info("c", static_cast<double>(c));
  telemetry.add_info("paper", paper ? "true" : "false");

  print_header("Fig. 10 — runtime profile on a single Hubbard matrix",
               "FSI with OpenMP uses 87% less CPU time than serial for "
               "Green's functions + measurements; MKL helps G but hurts "
               "measurements");
  print_host_note();

  qmc::HubbardParams params;
  params.l = l;
  params.u = 2.0;
  params.beta = 1.0;
  qmc::HubbardModel model(qmc::Lattice::chain(nx), params);
  util::Rng rng(11);
  qmc::HsField field(l, nx, rng);
  std::printf("workload: (L, N) = (%d, %d), c = %d; all diagonals + %d rows "
              "+ %d columns + equal-time + SPXX\n\n", l, nx, c, b, b);

  // Measured on one core: FSI algorithm vs explicit-form baseline.
  // At the paper's full size the explicit baseline alone needs ~2e13 flops
  // (hours on one core), so it is skipped and projected from the flop
  // model; the default scaled size measures both.
  Profile fsi_p = fsi_profile(model, field, c, true);
  Profile exp_p;
  if (!paper) {
    exp_p = explicit_profile(model, field, c);
  } else {
    selinv::ComplexityModel cm{nx, l, c};
    const double flop_ratio =
        (cm.explicit_flops(pcyclic::Pattern::AllDiagonals) +
         2.0 * cm.explicit_flops(pcyclic::Pattern::Rows)) /
        (cm.fsi_flops(pcyclic::Pattern::AllDiagonals) +
         2.0 * cm.fsi_flops(pcyclic::Pattern::Rows));
    exp_p.greens = fsi_p.greens * flop_ratio;  // modeled
    exp_p.measure = fsi_p.measure;
    std::printf("[--paper] explicit baseline projected from the flop model "
                "(ratio %.0fx)\n\n", flop_ratio);
  }
  util::Table meas({"path (measured, 1 core)", "Green's fn s", "measurement s",
                    "total s"});
  meas.add_row({"explicit form (Eq. 3) baseline",
                util::Table::num(exp_p.greens, 3),
                util::Table::num(exp_p.measure, 3),
                util::Table::num(exp_p.greens + exp_p.measure, 3)});
  meas.add_row({"FSI algorithm", util::Table::num(fsi_p.greens, 3),
                util::Table::num(fsi_p.measure, 3),
                util::Table::num(fsi_p.greens + fsi_p.measure, 3)});
  meas.print();
  const double speedup =
      (exp_p.greens + exp_p.measure) / (fsi_p.greens + fsi_p.measure);
  std::printf("algorithmic speedup of FSI over the explicit form: %.1fx\n\n",
              speedup);
  telemetry.add_metric("fsi_greens_s", fsi_p.greens, "s", false,
                       /*higher_is_better=*/false);
  telemetry.add_metric("fsi_measure_s", fsi_p.measure, "s", false, false);
  // The CI gate: algorithm-vs-algorithm speedup on the same machine — a
  // ratio of two times measured back to back, stable across hosts.
  telemetry.add_metric("fsi_speedup_vs_explicit", speedup, "ratio",
                       /*gate=*/!paper);

  // Mixed-precision profile: the two fp32-eligible stages (CLS cluster
  // products, WRP seed walks) timed against their fp64 twins on the same
  // matrix.  BSOFI always runs fp64, so the shared reduced inverse is
  // computed once outside both timed regions; best-of-3 on each side
  // because the gate is a single-host back-to-back ratio.
  {
    const pcyclic::PCyclicMatrix m = model.build_m(field, qmc::Spin::Up);
    const pcyclic::Selection sel(l, c, 1);
    const pcyclic::BlockOps ops(m);
    const pcyclic::BlockOpsF ops_f(m);
    const auto gtilde = bsofi::invert(selinv::cluster(m, c, 1, true));
    const dense::MatrixF gtilde_f = dense::demoted(gtilde);
    const pcyclic::Pattern pats[] = {pcyclic::Pattern::AllDiagonals,
                                     pcyclic::Pattern::Rows,
                                     pcyclic::Pattern::Columns};
    util::WallTimer t;
    double t64 = 0.0, t32 = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      t.reset();
      auto reduced = selinv::cluster(m, c, 1, true);
      for (const auto pat : pats)
        selinv::wrap(ops, gtilde, pat, sel, true);
      t64 = rep == 0 ? t.seconds() : std::min(t64, t.seconds());

      t.reset();
      auto reduced_f = selinv::cluster_mixed(m, c, 1, true);
      for (const auto pat : pats)
        selinv::wrap_f(ops_f, gtilde_f, pat, sel, true);
      t32 = rep == 0 ? t.seconds() : std::min(t32, t.seconds());
    }
    const double mixed_speedup = t64 / t32;
    std::printf("\nmixed precision (fp32 CLS + WRP vs fp64, BSOFI excluded): "
                "fp64 %.3f s, fp32 %.3f s, speedup %.2fx\n\n",
                t64, t32, mixed_speedup);
    telemetry.add_metric("mixed_cls_wrp_s", t32, "s", false,
                         /*higher_is_better=*/false);
    telemetry.add_metric("mixed_cls_wrp_speedup", mixed_speedup, "ratio",
                         /*gate=*/!paper);
  }

  // Per-stage model-vs-measured, derived from trace data: one full FSI call
  // (the paper's b-column workload) with spans on; CLS/BSOFI/WRP wall times
  // come from the recorded fsi.* spans, GFLOP/s from the metrics counters,
  // and predictions from the Sec. II-C complexities priced at the measured
  // DGEMM rate.
  if (obs::enabled()) {
    pcyclic::PCyclicMatrix m = model.build_m(field, qmc::Spin::Up);
    StageProfile prof = profile_fsi(m, c, pcyclic::Pattern::Columns, 1);
    const double peak = dgemm_gflops(nx);
    selinv::ComplexityModel cm{nx, l, c};
    std::printf("per-stage model vs measured (trace spans, pattern = %d "
                "columns):\n", b);
    obs::make_fsi_report(prof.stats, cm, pcyclic::Pattern::Columns, peak)
        .print();
  }

  // Modeled 12-thread bars in the paper's three execution modes.
  selinv::StageTimes st{fsi_p.greens * 0.2, fsi_p.greens * 0.4,
                        fsi_p.greens * 0.4};  // representative stage split
  const double serial_total = fsi_p.greens + fsi_p.measure;
  const double mkl_g = selinv::mkl_style_time(st, 12, nx);
  const double mkl_meas = fsi_p.measure * 1.15;  // serial code in threads
  const double fsi_g = selinv::fsi_openmp_time(st, 12, b);
  const double fsi_meas = fsi_p.measure / std::min<double>(12.0, double(b));
  util::Table bars({"mode (12 threads)", "Green's fn s", "measurement s",
                    "total s", "vs serial"});
  bars.add_row({"Serial (measured)", util::Table::num(fsi_p.greens, 3),
                util::Table::num(fsi_p.measure, 3),
                util::Table::num(serial_total, 3), "1.0x"});
  bars.add_row({"MKL-style (modeled)", util::Table::num(mkl_g, 3),
                util::Table::num(mkl_meas, 3),
                util::Table::num(mkl_g + mkl_meas, 3),
                util::Table::num(serial_total / (mkl_g + mkl_meas), 1) + "x"});
  bars.add_row({"FSI + OpenMP (modeled)", util::Table::num(fsi_g, 3),
                util::Table::num(fsi_meas, 3),
                util::Table::num(fsi_g + fsi_meas, 3),
                util::Table::num(serial_total / (fsi_g + fsi_meas), 1) + "x"});
  bars.print();
  std::printf(
      "\nshape check (paper): MKL reduces G time but not measurement time;\n"
      "FSI+OpenMP reduces both — ~87%% less CPU time than serial (ours: "
      "%.0f%%).\n",
      100.0 * (1.0 - (fsi_g + fsi_meas) / serial_total));
  finish_bench(telemetry);
  return 0;
}
