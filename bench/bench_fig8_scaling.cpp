/// \file bench_fig8_scaling.cpp
/// \brief Paper Fig. 8 (bottom) — OpenMP strong scaling of FSI vs the
/// "pure multi-threaded MKL" mode, 1..12 threads.
///
/// "We see that the former [FSI with OpenMP] is much closer to the ideal
///  scaling.  The OpenMP overhead is negligible when the number of OpenMP
///  threads per process is small."
///
/// SUBSTITUTION: this host has one CPU core, so the 1-thread stage profile
/// is measured and the 2..12-thread points come from the calibrated
/// analytic model (perfmodel.hpp).  The model's two parameters were fixed
/// once against the paper's 12-thread endpoints and are not fitted per run.
///
///   ./bench_fig8_scaling [--N 192] [--L 100] [--c 10] [--paper (N=576)]

#include "common.hpp"

#include "fsi/util/fpenv.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  using namespace fsi::bench;
  util::Cli cli(argc, argv);
  const index_t n = cli.has("paper") ? 576 : cli.get_int("N", 192);
  const index_t l = cli.get_int("L", 100);
  const index_t c = cli.get_int("c", 10);
  const index_t b = l / c;
  init_trace(cli);
  obs::BenchTelemetry telemetry("bench_fig8_scaling");
  telemetry.add_info("N", static_cast<double>(n));
  telemetry.add_info("L", static_cast<double>(l));
  telemetry.add_info("c", static_cast<double>(c));

  print_header("Fig. 8 (bottom) — FSI scalability, OpenMP vs MKL-style",
               "FSI/OpenMP near ideal scaling; threaded-kernels-only (MKL) "
               "saturates around 2x at 12 threads");
  print_host_note();

  pcyclic::PCyclicMatrix m = make_hubbard(n, l);
  StageProfile serial = profile_fsi(m, c, pcyclic::Pattern::Columns, 2);
  const double t1 = serial.total_seconds();
  const double gf1 = serial.gflops(t1, serial.total_flops());
  std::printf("measured 1-thread profile at (N, L, c) = (%d, %d, %d):\n"
              "  CLS %.3fs  BSOFI %.3fs  WRP %.3fs  -> %.1f Gflops\n\n",
              n, l, c, serial.seconds.cls, serial.seconds.bsofi,
              serial.seconds.wrap, gf1);

  util::Table t({"threads", "ideal GF/s", "FSI/OpenMP GF/s (modeled)",
                 "MKL-style GF/s (modeled)", "FSI speedup", "MKL speedup"});
  for (int p : {1, 2, 4, 6, 8, 10, 12}) {
    const double t_fsi = selinv::fsi_openmp_time(serial.seconds, p, b);
    const double t_mkl = selinv::mkl_style_time(serial.seconds, p, n);
    t.add_row({util::Table::num((long long)p), util::Table::num(gf1 * p, 1),
               util::Table::num(gf1 * t1 / t_fsi, 1),
               util::Table::num(gf1 * t1 / t_mkl, 1),
               util::Table::num(t1 / t_fsi, 2), util::Table::num(t1 / t_mkl, 2)});
  }
  t.print();
  std::printf(
      "\nshape check (paper): FSI speedup at 12 threads ~%.0fx (near ideal),\n"
      "MKL-style ~2x ('FSI almost doubles the performance of pure\n"
      "multi-threaded MKL routines').\n",
      t1 / selinv::fsi_openmp_time(serial.seconds, 12, b));
  telemetry.add_metric("fsi_gflops_1thread", gf1, "gflops");
  telemetry.add_metric("modeled_speedup_12t",
                       t1 / selinv::fsi_openmp_time(serial.seconds, 12, b),
                       "ratio");
  finish_bench(telemetry);
  return 0;
}
