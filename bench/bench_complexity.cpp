/// \file bench_complexity.cpp
/// \brief Paper Sec. II-C table — flop complexity of FSI vs the explicit
/// form (Eq. 3), measured with the instrumented kernels and compared with
/// the paper's closed forms:
///
///   selected inv.   | explicit form | FSI
///   b diagonals     | 2 b^2 c N^3   | [2(c-1) + 7b] b N^3
///   b-1 sub-diag.   | 4 b^2 c N^3   | [2c + 7b] b N^3
///   b cols/rows     | b^3 c^2 N^3   | 3 b^2 c N^3
///
///   ./bench_complexity [--N 24] [--L 64] [--c 8]

#include "common.hpp"

#include "fsi/util/fpenv.hpp"

#include "fsi/pcyclic/explicit_inverse.hpp"

namespace {

using namespace fsi;
using namespace fsi::bench;

/// Measured flops of computing the pattern's blocks via the explicit form.
std::uint64_t explicit_flops_measured(const pcyclic::PCyclicMatrix& m,
                                      pcyclic::Pattern pattern,
                                      const pcyclic::Selection& sel) {
  util::flops::Scope scope;
  pcyclic::SelectedInversion out(pattern, m.block_size(), sel);
  for (const auto& [k, col] : out.keys())
    out.slot(k, col) = pcyclic::explicit_block(m, k, col);
  return scope.elapsed();
}

}  // namespace

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  const index_t n = cli.get_int("N", 24);
  const index_t l = cli.get_int("L", 64);
  const index_t c = cli.get_int("c", 8);
  const index_t b = l / c;
  init_trace(cli);
  obs::BenchTelemetry telemetry("bench_complexity");
  telemetry.add_info("N", static_cast<double>(n));
  telemetry.add_info("L", static_cast<double>(l));
  telemetry.add_info("c", static_cast<double>(c));

  print_header("Sec. II-C table — flop complexity, explicit form vs FSI",
               "for b block columns FSI uses ~bc/3 times fewer flops");

  pcyclic::PCyclicMatrix m = make_hubbard(n, l);
  std::printf("(N, L, c) = (%d, %d, %d), b = %d\n\n", n, l, c, b);

  selinv::ComplexityModel model{n, l, c};
  util::Table t({"pattern", "explicit meas.", "explicit model", "FSI meas.",
                 "FSI model", "meas. speedup", "model speedup"});

  for (auto pat : {pcyclic::Pattern::Diagonal, pcyclic::Pattern::SubDiagonal,
                   pcyclic::Pattern::Columns, pcyclic::Pattern::Rows}) {
    const pcyclic::Selection sel(l, c, 1);
    const std::uint64_t exp_meas = explicit_flops_measured(m, pat, sel);
    StageProfile fsi_prof = profile_fsi(m, c, pat, 1);
    const double exp_model = model.explicit_flops(pat);
    const double fsi_model = model.fsi_flops(pat);
    t.add_row({pcyclic::pattern_name(pat), util::Table::sci(double(exp_meas)),
               util::Table::sci(exp_model),
               util::Table::sci(double(fsi_prof.total_flops())),
               util::Table::sci(fsi_model),
               util::Table::num(double(exp_meas) / fsi_prof.total_flops(), 1),
               util::Table::num(exp_model / fsi_model, 1)});
    telemetry.add_metric(
        std::string("flop_speedup_") + pcyclic::pattern_name(pat),
        static_cast<double>(exp_meas) /
            static_cast<double>(fsi_prof.total_flops()),
        "ratio");
  }
  t.print();

  std::printf(
      "\nnotes: measured explicit-form counts include the W_k LU inversions\n"
      "(the paper's closed form counts only the leading chain-product term),\n"
      "so measured speedups exceed the model for the small patterns.  For\n"
      "b columns/rows the paper's headline ~bc/3 = %.1f ratio should match\n"
      "the 'model speedup' column and be of the same order as measured.\n",
      static_cast<double>(b) * c / 3.0);
  finish_bench(telemetry);
  return 0;
}
