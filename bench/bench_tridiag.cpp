/// \file bench_tridiag.cpp
/// \brief Extension bench — selected inversion of block tridiagonal
/// matrices (the paper's Sec. VI future work), comparing the structured
/// engine against dense LU inversion.
///
/// The structured path costs O(L N^3) setup + O(N^3) per requested block;
/// dense inversion costs O((LN)^3).  The crossover arrives immediately and
/// widens linearly in L — the same economics that motivate FSI for p-cyclic
/// matrices.
///
///   ./bench_tridiag [--N 48]

#include "common.hpp"

#include "fsi/util/fpenv.hpp"

#include "fsi/dense/norms.hpp"
#include "fsi/tridiag/tridiag.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  using namespace fsi::bench;
  util::Cli cli(argc, argv);
  const index_t n = cli.get_int("N", 48);
  init_trace(cli);
  obs::BenchTelemetry telemetry("bench_tridiag");
  telemetry.add_info("N", static_cast<double>(n));

  print_header("Extension — block tridiagonal selected inversion",
               "future work of the paper (Sec. VI): the FSI idea applied to "
               "block tridiagonal matrices");

  util::Table t({"L", "dim", "structured s", "dense LU s", "speedup",
                 "max rel err (col)"});
  util::Rng rng(55);
  for (index_t l : {index_t{8}, index_t{16}, index_t{32}, index_t{64}}) {
    tridiag::BlockTridiagonalMatrix m =
        tridiag::BlockTridiagonalMatrix::random(n, l, rng);

    util::WallTimer w1;
    tridiag::TridiagSelectedInverse sel(m);
    auto col = sel.column(l / 2);
    const double t_sel = w1.seconds();

    util::WallTimer w2;
    dense::Matrix g = tridiag::invert_dense_lu(m);
    const double t_lu = w2.seconds();

    double worst = 0.0;
    for (index_t i = 0; i < l; ++i)
      worst = std::max(
          worst, dense::rel_fro_error(
                     col[static_cast<std::size_t>(i)],
                     dense::Matrix::copy_of(
                         g.block(i * n, (l / 2) * n, n, n))));

    t.add_row({util::Table::num((long long)l),
               util::Table::num((long long)(n * l)),
               util::Table::num(t_sel, 3), util::Table::num(t_lu, 3),
               util::Table::num(t_lu / t_sel, 1), util::Table::sci(worst)});
    telemetry.add_metric("speedup_L" + std::to_string(l), t_lu / t_sel,
                         "ratio");
    telemetry.add_metric("max_rel_err_L" + std::to_string(l), worst, "rel_err",
                         false, /*higher_is_better=*/false);
  }
  t.print();
  std::printf("\nshape check: speedup grows ~L^2 for one block column "
              "(O(L N^3) vs O(L^3 N^3)), accuracy at rounding level.\n");
  finish_bench(telemetry);
  return 0;
}
