/// \file bench_ablation_delayed.cpp
/// \brief Ablation — delayed (blocked) Metropolis updates.
///
/// The classic sweep applies one rank-1 GER to G per accepted flip
/// (memory-bound Level-2 work).  Delayed updates accumulate k of them and
/// apply a single N x k GEMM — the optimisation lineage of the paper's
/// ref. [23] (Tomas et al., IPDPS 2012, GPU DQMC).  This bench measures
/// sweep throughput vs delay depth and checks the Markov chain is unchanged.
///
///   ./bench_ablation_delayed [--nx 10] [--ny 10] [--L 32] [--sweeps 4]

#include "common.hpp"

#include "fsi/util/fpenv.hpp"

#include "fsi/dense/norms.hpp"
#include "fsi/qmc/dqmc.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  using namespace fsi::bench;
  util::Cli cli(argc, argv);
  const index_t nx = cli.get_int("nx", 10);
  const index_t ny = cli.get_int("ny", 10);
  const index_t l = cli.get_int("L", 32);
  const index_t sweeps = cli.get_int("sweeps", 4);
  init_trace(cli);
  obs::BenchTelemetry telemetry("bench_ablation_delayed");
  telemetry.add_info("N", static_cast<double>(nx * ny));
  telemetry.add_info("L", static_cast<double>(l));
  telemetry.add_info("sweeps", static_cast<double>(sweeps));

  print_header("Ablation — delayed (blocked) Metropolis updates",
               "k accumulated rank-1 updates applied as one GEMM; "
               "equivalent chain, higher sweep throughput for k << N");

  qmc::HubbardParams p;
  p.u = 4.0;
  p.beta = 2.0;
  p.l = l;
  qmc::HubbardModel model(qmc::Lattice::rectangle(nx, ny), p);
  std::printf("workload: %dx%d lattice (N=%d), L=%d, %d sweeps\n\n", nx, ny,
              nx * ny, l, sweeps);

  util::Table t({"delay depth", "sweep s", "updates/s (k)", "accepted",
                 "G drift vs depth 0"});
  dense::Matrix g_ref;
  index_t acc_ref = 0;
  for (index_t depth : {index_t{0}, index_t{4}, index_t{8}, index_t{16},
                        index_t{32}, index_t{64}}) {
    util::Rng rng(99);
    qmc::HsField field(l, nx * ny, rng);
    qmc::EqualTimeGreens g_up(model, field, qmc::Spin::Up, 4, 8, depth);
    qmc::EqualTimeGreens g_dn(model, field, qmc::Spin::Down, 4, 8, depth);
    double sign = 1.0;
    index_t accepted = 0;
    util::WallTimer w;
    for (index_t s = 0; s < sweeps; ++s)
      accepted += qmc::metropolis_sweep(model, field, g_up, g_dn, rng, sign);
    const double secs = w.seconds();

    double drift = 0.0;
    if (depth == 0) {
      g_ref = dense::Matrix::copy_of(g_up.g().view());
      acc_ref = accepted;
    } else {
      drift = dense::rel_fro_error(g_up.g(), g_ref);
      FSI_CHECK(accepted == acc_ref, "delayed chain diverged from immediate");
    }
    t.add_row({util::Table::num((long long)depth), util::Table::num(secs, 3),
               util::Table::num(accepted / secs / 1000.0, 1),
               util::Table::num((long long)accepted),
               depth == 0 ? "-" : util::Table::sci(drift)});
    telemetry.add_metric("updates_per_ms_depth" + std::to_string(depth),
                         accepted / secs / 1000.0, "k_updates_per_s");
    if (depth != 0)
      telemetry.add_metric("drift_depth" + std::to_string(depth), drift,
                           "rel_err", false, /*higher_is_better=*/false);
  }
  t.print();
  std::printf(
      "\nshape check: identical acceptance counts and zero drift — the\n"
      "delayed chain is exactly the immediate chain.  On this single-core\n"
      "host at DQMC-sized N the G matrix is cache-resident, so GER and the\n"
      "batched GEMM run at similar rates; the Level-3 payoff appears on\n"
      "many-core/GPU targets (the setting of the paper's ref. [23]), where\n"
      "the same code path applies k updates per kernel launch.\n");
  finish_bench(telemetry);
  return 0;
}
